"""Source/equivalence test matrix for the shard-source abstraction.

The engine contract extended to sources and backends: for one logical
tensor, every ``ShardSource`` implementation yields byte-identical
mode-sorted copies, identical shard tables and batch boundaries, and
therefore **bit-identical** MTTKRP results for every ``(batch_size,
backend, prefetch, mode)`` cell — with :class:`MmapNpzSource` additionally
keeping the element data on disk (memory-mapped) rather than resident, and
:class:`ProcessBackend` reducing in other processes that attach to the
data instead of receiving it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    ClusterBackend,
    CompressedChunkSource,
    InMemorySource,
    MmapNpzSource,
    ProcessBackend,
    SerialBackend,
    StreamingExecutor,
    SyntheticSource,
    ThreadBackend,
    auto_batch_size,
    open_shard_source,
    resolve_batch_size,
    stream_cache_fraction,
    streamed_batch_bytes,
)
from repro.engine.autotune import MAX_AUTO_BATCH, MIN_AUTO_BATCH
from repro.engine.batch import build_batch_plan
from repro.errors import ReproError, TensorFormatError
from repro.partition.plan import build_partition_plan
from repro.simgpu.kernel import KernelCostModel
from repro.tensor.generate import zipf_coo
from repro.tensor.io import write_shard_cache, write_shard_cache_v2
from repro.tensor.kernelreg import (
    KERNEL_DISABLE_ENV,
    KERNEL_NAMES,
    get_kernel,
    kernel_availability,
    refresh_kernel_registry,
)
from repro.tensor.reference import mttkrp_coo_reference

REF_RTOL = 1e-9
REF_ATOL = 1e-12

# Fused tiers promise FUSED_RTOL per batch; an executor accumulates many
# batches across shards, so whole-output comparisons get one order of
# magnitude of slack on top of the per-batch contract.
EXEC_FUSED_RTOL = 1e-11
EXEC_FUSED_ATOL = 1e-13

N_GPUS = 4
SHARDS_PER_GPU = 4


def _tensor():
    return zipf_coo((40, 25, 30), 1500, exponents=(1.2, 0.8, 1.0), seed=11)


@pytest.fixture(scope="module")
def tensor():
    return _tensor()


@pytest.fixture(scope="module")
def factors(tensor):
    rng = np.random.default_rng(99)
    return [rng.random((s, 6)) for s in tensor.shape]


@pytest.fixture(scope="module")
def plan(tensor):
    return build_partition_plan(tensor, N_GPUS, shards_per_gpu=SHARDS_PER_GPU)


@pytest.fixture(scope="module")
def cache_path(tensor, tmp_path_factory):
    return write_shard_cache(tensor, tmp_path_factory.mktemp("cache") / "t.npz")


@pytest.fixture(scope="module")
def cache_v2_path(tensor, tmp_path_factory):
    """A v2 chunked/compressed cache with chunks far smaller than the
    tensor, so batches genuinely cross chunk boundaries."""
    return write_shard_cache_v2(
        tensor,
        tmp_path_factory.mktemp("cache_v2") / "t.npz",
        codec="zlib",
        chunk_nnz=128,
    )


@pytest.fixture(scope="module")
def eager_outputs(tensor, factors, plan):
    """Canonical bits: the in-memory engine at eager granularity."""
    engine = StreamingExecutor(plan)
    return [engine.mttkrp(factors, m) for m in range(tensor.nmodes)]


def make_source(kind: str, plan, cache_path, cache_v2_path=None):
    if kind == "memory":
        return InMemorySource(plan)
    if kind == "mmap":
        return MmapNpzSource(
            cache_path, n_gpus=N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
    if kind == "chunked":
        return CompressedChunkSource(
            cache_v2_path, n_gpus=N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
    if kind == "synthetic":
        return SyntheticSource(
            _tensor, n_gpus=N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
    raise AssertionError(kind)


SOURCE_KINDS = ["memory", "mmap", "chunked", "synthetic"]
BACKEND_KINDS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def shared_backends():
    """One persistent pool per parallel backend for the whole matrix —
    exactly how production reuses backends across calls (and it keeps the
    process matrix from forking a pool per cell)."""
    backends = {
        "serial": SerialBackend(),
        "thread": ThreadBackend(2),
        "process": ProcessBackend(2),
    }
    yield backends
    for backend in backends.values():
        backend.close()


class TestSourceEquivalenceMatrix:
    """Every (source, batch_size, backend, prefetch, mode) cell reproduces
    the eager bits and matches the COO reference."""

    @pytest.mark.parametrize("kind", SOURCE_KINDS)
    @pytest.mark.parametrize("batch_size", [1, 7, None])
    @pytest.mark.parametrize("backend", BACKEND_KINDS)
    @pytest.mark.parametrize("prefetch", [False, True])
    def test_bit_identical_to_eager(
        self, tensor, factors, plan, cache_path, cache_v2_path, eager_outputs,
        shared_backends, kind, batch_size, backend, prefetch,
    ):
        source = make_source(kind, plan, cache_path, cache_v2_path)
        engine = StreamingExecutor(
            source,
            batch_size=batch_size,
            backend=shared_backends[backend],
            prefetch=prefetch,
        )
        for mode in range(tensor.nmodes):
            got = engine.mttkrp(factors, mode)
            assert np.array_equal(got, eager_outputs[mode])
            assert np.allclose(
                got,
                mttkrp_coo_reference(tensor, factors, mode),
                rtol=REF_RTOL,
                atol=REF_ATOL,
            )

    @pytest.mark.parametrize("kind", SOURCE_KINDS)
    @pytest.mark.parametrize("workers", [1, 4])
    def test_deprecated_workers_alias_still_bit_identical(
        self, tensor, factors, plan, cache_path, cache_v2_path,
        eager_outputs, kind, workers
    ):
        """The PR 1 spelling (`workers=N`) keeps working: it maps onto the
        thread backend and reproduces the same bits."""
        source = make_source(kind, plan, cache_path, cache_v2_path)
        with StreamingExecutor(
            source, batch_size=7, workers=workers
        ) as engine:
            assert engine.backend.name == ("thread" if workers > 1 else "serial")
            for mode in range(tensor.nmodes):
                assert np.array_equal(
                    engine.mttkrp(factors, mode), eager_outputs[mode]
                )

    @pytest.mark.parametrize("kind", SOURCE_KINDS)
    def test_identical_shard_tables_and_batch_plans(
        self, tensor, plan, cache_path, cache_v2_path, kind
    ):
        source = make_source(kind, plan, cache_path, cache_v2_path)
        assert source.shape == tensor.shape
        assert source.nnz == tensor.nnz
        for mode in range(tensor.nmodes):
            part = source.partition(mode)
            ref = plan.modes[mode]
            assert part.shards == ref.shards
            assert np.array_equal(source.assignment(mode), plan.assignments[mode])
            assert np.array_equal(
                np.asarray(source.mode_keys(mode)),
                ref.tensor.indices[:, mode],
            )
            got = build_batch_plan(part, 13, keys=source.mode_keys(mode))
            want = build_batch_plan(ref, 13)
            assert got.batches == want.batches

    @pytest.mark.parametrize("kind", SOURCE_KINDS)
    def test_validate_passes(self, plan, cache_path, cache_v2_path, kind):
        make_source(kind, plan, cache_path, cache_v2_path).validate()

    @pytest.mark.parametrize("kind", SOURCE_KINDS)
    def test_per_gpu_restriction_partitions_output(
        self, tensor, factors, plan, cache_path, cache_v2_path, kind
    ):
        source = make_source(kind, plan, cache_path, cache_v2_path)
        engine = StreamingExecutor(source, batch_size=64)
        mode = 1
        total = np.zeros((tensor.shape[mode], 6))
        for g in range(N_GPUS):
            engine.mttkrp_into(
                factors, mode, total, shard_ids=source.shards_for_gpu(mode, g)
            )
        assert np.array_equal(total, engine.mttkrp(factors, mode))


class TestKernelEquivalenceMatrix:
    """The kernel axis of the engine contract: every ``(kernel × source ×
    backend)`` cell reproduces the eager output — bit-identically for
    bit-identical tiers, within the documented fused tolerance otherwise —
    and an unavailable tier's cell degrades to the numpy bits instead of
    failing."""

    @pytest.mark.parametrize("kernel", list(KERNEL_NAMES))
    @pytest.mark.parametrize("kind", ["memory", "chunked"])
    @pytest.mark.parametrize("backend", BACKEND_KINDS)
    def test_kernel_cells_reproduce_eager(
        self, tensor, factors, plan, cache_path, cache_v2_path, eager_outputs,
        shared_backends, kernel, kind, backend,
    ):
        source = make_source(kind, plan, cache_path, cache_v2_path)
        engine = StreamingExecutor(
            source,
            batch_size=7,
            backend=shared_backends[backend],
            kernel=kernel,
        )
        resolved = engine.kernel
        if resolved != kernel:
            # graceful fallback: the tier is genuinely unavailable here
            assert resolved == "numpy"
            assert kernel_availability()[kernel] is not None
        bit_exact = get_kernel(resolved).bit_identical
        for mode in range(tensor.nmodes):
            got = engine.mttkrp(factors, mode)
            if bit_exact:
                assert np.array_equal(got, eager_outputs[mode])
            else:
                assert np.allclose(
                    got,
                    eager_outputs[mode],
                    rtol=EXEC_FUSED_RTOL,
                    atol=EXEC_FUSED_ATOL,
                )
            assert np.allclose(
                got,
                mttkrp_coo_reference(tensor, factors, mode),
                rtol=REF_RTOL,
                atol=REF_ATOL,
            )

    @pytest.mark.parametrize("kernel", list(KERNEL_NAMES))
    def test_fused_cells_are_run_to_run_deterministic(
        self, tensor, factors, plan, kernel
    ):
        """Tolerance tiers still promise the same bits on every call."""
        engine = StreamingExecutor(
            InMemorySource(plan), batch_size=7, kernel=kernel
        )
        first = engine.mttkrp(factors, 0)
        assert np.array_equal(first, engine.mttkrp(factors, 0))

    def test_unavailable_tier_falls_back_to_numpy_bits(
        self, tensor, factors, plan, eager_outputs, monkeypatch
    ):
        """With every compiled tier disabled (the numba-less CI leg in
        miniature), an explicit compiled-tier request silently runs the
        numpy reference — same bits, no error."""
        monkeypatch.setenv(KERNEL_DISABLE_ENV, "numba,cc")
        refresh_kernel_registry()
        try:
            for requested in ("numba", "cc", "auto"):
                engine = StreamingExecutor(
                    InMemorySource(plan), batch_size=7, kernel=requested
                )
                assert engine.kernel == "numpy"
                for mode in range(tensor.nmodes):
                    assert np.array_equal(
                        engine.mttkrp(factors, mode), eager_outputs[mode]
                    )
        finally:
            refresh_kernel_registry()

    def test_default_executor_stays_on_reference_path(self, plan):
        """No kernel argument means the numpy reference — the golden
        bit-identity contract of every pre-registry call site."""
        assert StreamingExecutor(InMemorySource(plan)).kernel is None


class TestClusterCell:
    """The multi-node cluster backend rides the same engine contract: a
    2-node loopback cluster reproduces the eager bits exactly over the
    resident source (elements shipped over the socket) and both
    out-of-core sources (nodes attach to the cache by path), for both
    exchange schedules."""

    @pytest.fixture(scope="class")
    def cluster_backend(self):
        """One persistent 2-node loopback cluster for the whole class —
        node processes are spawned once, like production reuse."""
        backend = ClusterBackend(nodes=2, workers=1)
        yield backend
        backend.close()

    @pytest.mark.parametrize("kind", ["memory", "mmap", "chunked"])
    @pytest.mark.parametrize("batch_size", [7, None])
    def test_bit_identical_to_eager(
        self, tensor, factors, plan, cache_path, cache_v2_path,
        eager_outputs, cluster_backend, kind, batch_size,
    ):
        source = make_source(kind, plan, cache_path, cache_v2_path)
        engine = StreamingExecutor(
            source, batch_size=batch_size, backend=cluster_backend
        )
        for mode in range(tensor.nmodes):
            got = engine.mttkrp(factors, mode)
            assert np.array_equal(got, eager_outputs[mode])

    def test_direct_exchange_same_bits(
        self, tensor, factors, plan, cache_path, eager_outputs
    ):
        with ClusterBackend(nodes=2, allgather="direct") as backend:
            source = make_source("mmap", plan, cache_path)
            engine = StreamingExecutor(
                source, batch_size=16, backend=backend
            )
            for mode in range(tensor.nmodes):
                assert np.array_equal(
                    engine.mttkrp(factors, mode), eager_outputs[mode]
                )

    def test_three_nodes_same_bits(
        self, tensor, factors, plan, cache_path, eager_outputs
    ):
        """Bit-identity holds for any slice count, not just 2."""
        with ClusterBackend(nodes=3) as backend:
            source = make_source("mmap", plan, cache_path)
            engine = StreamingExecutor(source, backend=backend)
            assert np.array_equal(
                engine.mttkrp(factors, 0), eager_outputs[0]
            )

    def test_comm_stats_accumulate(
        self, tensor, factors, plan, cache_path, cluster_backend
    ):
        """Every MTTKRP call records one measured exchange — the
        measured side of the predicted-vs-measured comm oracle."""
        cluster_backend.reset_comm_stats()
        source = make_source("mmap", plan, cache_path)
        engine = StreamingExecutor(source, backend=cluster_backend)
        engine.mttkrp(factors, 0)
        engine.mttkrp(factors, 1)
        stats = cluster_backend.comm_stats
        assert stats["calls"] == 2
        assert stats["seconds"] > 0.0
        assert stats["bytes"] > 0


class TestInMemorySource:
    def test_wraps_plan_without_copying(self, plan):
        source = InMemorySource(plan)
        assert source.partition_plan() is plan
        for mode in range(len(plan.modes)):
            assert source.partition(mode) is plan.modes[mode]

    def test_rejects_non_plan(self):
        with pytest.raises(ReproError, match="PartitionPlan"):
            InMemorySource("not a plan")

    def test_from_tensor(self, tensor, factors, eager_outputs):
        source = InMemorySource.from_tensor(
            tensor, N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
        out = StreamingExecutor(source).mttkrp(factors, 0)
        assert np.array_equal(out, eager_outputs[0])


class TestMmapNpzSource:
    def test_element_arrays_are_memory_mapped(self, plan, cache_path):
        source = make_source("mmap", plan, cache_path)
        for mode in range(len(source.shape)):
            part = source.partition(mode)
            assert isinstance(part.tensor.indices, np.memmap)
            assert isinstance(part.tensor.values, np.memmap)
            assert isinstance(source.mode_keys(mode), np.memmap)

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(TensorFormatError, match="repro cache"):
            MmapNpzSource(tmp_path / "nope.npz")

    def test_compressed_cache_rejected(self, tensor, tmp_path):
        path = tmp_path / "z.npz"
        np.savez_compressed(
            path,
            version=np.array([1]),
            shape=np.asarray(tensor.shape),
            nnz=np.array([tensor.nnz]),
        )
        with pytest.raises(TensorFormatError, match="compressed"):
            MmapNpzSource(path)

    def test_wrong_version_rejected(self, tensor, tmp_path):
        path = tmp_path / "v.npz"
        np.savez(
            path,
            version=np.array([999]),
            shape=np.asarray(tensor.shape),
            nnz=np.array([tensor.nnz]),
        )
        with pytest.raises(TensorFormatError, match="version"):
            MmapNpzSource(path)

    def test_missing_mode_arrays_rejected(self, tensor, tmp_path):
        path = tmp_path / "m.npz"
        np.savez(
            path,
            version=np.array([1]),
            shape=np.asarray(tensor.shape),
            nnz=np.array([tensor.nnz]),
        )
        with pytest.raises(ReproError, match="missing arrays"):
            MmapNpzSource(path)

    def test_missing_nnz_rejected_actionably(self, tensor, tmp_path):
        path = tmp_path / "no_nnz.npz"
        np.savez(
            path, version=np.array([1]), shape=np.asarray(tensor.shape)
        )
        with pytest.raises(ReproError, match="missing arrays.*nnz"):
            MmapNpzSource(path)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(TensorFormatError, match="not a shard cache"):
            MmapNpzSource(path)

    def test_close_and_context_manager(self, plan, cache_path):
        with make_source("mmap", plan, cache_path) as source:
            assert source.nnz > 0
        with pytest.raises(ReproError, match="closed"):
            source.partition(0)  # arrays dropped after close
        with pytest.raises(ReproError, match="reopen"):
            source.mode_keys(0)

    def test_suffixless_path_normalized(self, tensor, tmp_path):
        """Writer appends .npz; the source must resolve the same path."""
        written = write_shard_cache(tensor, tmp_path / "noext")
        assert written.name == "noext.npz"
        source = MmapNpzSource(tmp_path / "noext", n_gpus=2, shards_per_gpu=2)
        assert source.path == written
        assert source.nnz == tensor.nnz

    def test_bad_construction_args(self, cache_path):
        with pytest.raises(ReproError, match="n_gpus"):
            MmapNpzSource(cache_path, n_gpus=0)
        with pytest.raises(ReproError, match="shards_per_gpu"):
            MmapNpzSource(cache_path, shards_per_gpu=0)


class TestCompressedChunkSource:
    def test_element_arrays_are_lazy_chunked(self, plan, cache_v2_path):
        from repro.tensor.io import ChunkedArray

        source = make_source("chunked", plan, None, cache_v2_path)
        for mode in range(len(source.shape)):
            part = source.partition(mode)
            assert isinstance(part.tensor.indices, ChunkedArray)
            assert isinstance(part.tensor.values, ChunkedArray)
        assert source.codec == "zlib"
        assert source.chunk_nnz == 128

    def test_mode_keys_cached_one_mode_at_a_time(self, plan, cache_v2_path):
        source = make_source("chunked", plan, None, cache_v2_path)
        k0 = source.mode_keys(0)
        assert source.mode_keys(0) is k0  # cached while current
        source.mode_keys(1)
        assert source.mode_keys(0) is not k0  # evicted, re-decompressed

    def test_v1_cache_rejected_with_found_version(self, cache_path):
        """Opening a v1 mmap cache as v2 names the found version and the
        right reader instead of failing cryptically."""
        with pytest.raises(TensorFormatError, match="version 1"):
            CompressedChunkSource(cache_path)

    def test_v2_cache_rejected_by_v1_source_with_found_version(
        self, cache_v2_path
    ):
        """The reverse direction: MmapNpzSource on a v2 cache must name
        version 2 and point at the chunked reader, not die inside zipfile."""
        with pytest.raises(TensorFormatError, match="version 2"):
            MmapNpzSource(cache_v2_path)

    def test_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(TensorFormatError, match="repro cache"):
            CompressedChunkSource(tmp_path / "nope.npz")

    def test_close_and_context_manager(self, plan, cache_v2_path):
        with make_source("chunked", plan, None, cache_v2_path) as source:
            assert source.nnz > 0
        with pytest.raises(ReproError, match="closed"):
            source.mode_keys(0)
        with pytest.raises(ReproError, match="reopen"):
            source.partition(0).tensor.indices[0:10]

    def test_corrupt_chunk_named_in_error(self, tensor, tmp_path):
        """A flipped byte inside a chunk frame trips the CRC with a
        diagnostic naming the array and chunk, not wrong numbers."""
        path = write_shard_cache_v2(
            tensor, tmp_path / "corrupt.npz", codec="zlib", chunk_nnz=128
        )
        raw = bytearray(path.read_bytes())
        raw[40] ^= 0xFF  # inside the first frame (frames start at byte 16)
        path.write_bytes(bytes(raw))
        source = CompressedChunkSource(
            path, n_gpus=N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
        with pytest.raises(
            TensorFormatError, match="chunk 0.*checksum mismatch"
        ):
            np.asarray(source.partition(0).tensor.indices)

    def test_process_attach_spec_reopens_by_path(self, plan, cache_v2_path):
        source = make_source("chunked", plan, None, cache_v2_path)
        assert source.process_attach_spec(0) == (
            "chunked_v2",
            str(cache_v2_path),
        )

    def test_bad_construction_args(self, cache_v2_path):
        with pytest.raises(ReproError, match="n_gpus"):
            CompressedChunkSource(cache_v2_path, n_gpus=0)
        with pytest.raises(ReproError, match="shards_per_gpu"):
            CompressedChunkSource(cache_v2_path, shards_per_gpu=0)

    def test_open_shard_source_autodetects(self, cache_path, cache_v2_path):
        v1 = open_shard_source(
            cache_path, n_gpus=N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
        v2 = open_shard_source(
            cache_v2_path, n_gpus=N_GPUS, shards_per_gpu=SHARDS_PER_GPU
        )
        try:
            assert isinstance(v1, MmapNpzSource)
            assert isinstance(v2, CompressedChunkSource)
            assert v1.nnz == v2.nnz and v1.shape == v2.shape
        finally:
            v1.close()
            v2.close()


class TestSyntheticSource:
    def test_only_one_mode_resident(self, plan, cache_path):
        source = make_source("synthetic", plan, cache_path)
        p0 = source.partition(0)
        assert source.partition(0) is p0  # cached while current
        source.partition(1)
        assert source.partition(0) is not p0  # regenerated after eviction

    def test_shards_accessor_is_metadata_only(self, plan, cache_path):
        """shards()/assignment() must not force a mode copy to materialize."""
        source = make_source("synthetic", plan, cache_path)
        calls = []
        source._builder, real = (
            lambda: calls.append(1) or real(),
            source._builder,
        )
        for mode in range(len(source.shape)):
            assert source.shards(mode) == plan.modes[mode].shards
            source.assignment(mode)
        assert not calls  # no regeneration happened

    def test_nondeterministic_builder_rejected(self):
        counter = iter(range(100))

        def builder():
            return zipf_coo((10, 8, 6), 50, exponents=1.0, seed=next(counter))

        source = SyntheticSource(builder, n_gpus=2, shards_per_gpu=2)
        with pytest.raises(ReproError, match="deterministic"):
            source.partition(0)

    def test_builder_type_checked(self):
        with pytest.raises(ReproError, match="callable"):
            SyntheticSource("nope", n_gpus=2)
        with pytest.raises(ReproError, match="SparseTensorCOO"):
            SyntheticSource(lambda: 42, n_gpus=2)

    def test_dataset_helper(self):
        from repro.datasets.profiles import profile_by_name
        from repro.datasets.synthetic import materialize, synthetic_source

        source = synthetic_source(
            profile_by_name("twitch"), 2000, n_gpus=2, shards_per_gpu=2, seed=5
        )
        tensor = materialize(profile_by_name("twitch"), 2000, seed=5)
        assert source.shape == tensor.shape
        assert source.nnz == tensor.nnz
        rng = np.random.default_rng(1)
        factors = [rng.random((s, 4)) for s in tensor.shape]
        got = StreamingExecutor(source, batch_size=32).mttkrp(factors, 0)
        ref_plan = build_partition_plan(tensor, 2, shards_per_gpu=2)
        want = StreamingExecutor(ref_plan).mttkrp(factors, 0)
        assert np.array_equal(got, want)

    def test_seed_required(self):
        from repro.datasets.profiles import profile_by_name
        from repro.datasets.synthetic import synthetic_source

        with pytest.raises(ReproError, match="seed"):
            synthetic_source(profile_by_name("twitch"), 1000, seed=None)


class TestAutotune:
    def test_auto_batch_fits_cache(self):
        cost = KernelCostModel()
        for rank in (4, 32, 128):
            for nmodes in (3, 4, 5):
                batch = auto_batch_size(cost, rank, nmodes)
                assert streamed_batch_bytes(batch, rank, nmodes) <= (
                    cost.effective_cache_bytes
                )

    def test_auto_batch_clamped(self):
        tiny = KernelCostModel().with_overrides(effective_cache_bytes=1024)
        assert auto_batch_size(tiny, 32, 3) == MIN_AUTO_BATCH
        huge = KernelCostModel().with_overrides(
            effective_cache_bytes=1 << 45
        )
        assert auto_batch_size(huge, 1, 1) == MAX_AUTO_BATCH

    def test_auto_batch_rejects_bad_inputs(self):
        cost = KernelCostModel()
        with pytest.raises(ReproError):
            auto_batch_size(cost, 0, 3)
        with pytest.raises(ReproError):
            auto_batch_size(cost, 4, 0)

    def test_resolution_is_residency_aware(self):
        cost = KernelCostModel()
        assert (
            resolve_batch_size("auto", cost=cost, rank=32, nmodes=3,
                               out_of_core=False)
            is None
        )
        assert resolve_batch_size(
            "auto", cost=cost, rank=32, nmodes=3, out_of_core=True
        ) == auto_batch_size(cost, 32, 3)

    def test_resolution_validates(self):
        cost = KernelCostModel()
        with pytest.raises(ReproError, match="'auto'"):
            resolve_batch_size(
                "adaptive", cost=cost, rank=32, nmodes=3, out_of_core=False
            )
        with pytest.raises(ReproError, match=">= 1"):
            resolve_batch_size(0, cost=cost, rank=32, nmodes=3, out_of_core=False)
        assert (
            resolve_batch_size(
                None, cost=cost, rank=32, nmodes=3, out_of_core=True
            )
            is None
        )
        assert (
            resolve_batch_size(
                64, cost=cost, rank=32, nmodes=3, out_of_core=True
            )
            == 64
        )

    def test_executor_refuses_unresolved_auto(self, plan):
        with pytest.raises(ReproError, match="resolve"):
            StreamingExecutor(plan, batch_size="auto")

    def test_cache_fraction_override_scales_batch(self):
        """A larger cache slice per lane means a larger auto batch."""
        cost = KernelCostModel()
        default = auto_batch_size(cost, 32, 3)
        wide = auto_batch_size(cost, 32, 3, cache_fraction=1.0)
        narrow = auto_batch_size(cost, 32, 3, cache_fraction=1 / 1024)
        assert narrow <= default <= wide
        assert wide > default  # 1.0 is 32x the default slice

    def test_cache_fraction_env_override(self, monkeypatch):
        cost = KernelCostModel()
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "1.0")
        assert stream_cache_fraction() == 1.0
        assert auto_batch_size(cost, 32, 3) == auto_batch_size(
            cost, 32, 3, cache_fraction=1.0
        )
        # explicit override beats the environment
        assert stream_cache_fraction(0.5) == 0.5
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "nonsense")
        with pytest.raises(ReproError, match="REPRO_STREAM_CACHE_FRACTION"):
            stream_cache_fraction()

    @pytest.mark.parametrize("bad", [0, -0.5, 1.5, "lots"])
    def test_cache_fraction_domain(self, bad):
        with pytest.raises(ReproError, match="stream_cache_fraction"):
            stream_cache_fraction(bad)


class TestAmpedIntegration:
    """AmpedMTTKRP over each source kind: identical bits, O(batch) residency."""

    @pytest.mark.parametrize("kind", ["memory", "mmap", "chunked"])
    def test_amped_over_sources_bit_identical(
        self, tensor, factors, plan, cache_path, cache_v2_path, kind
    ):
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU)
        baseline = AmpedMTTKRP(tensor, cfg)
        source = make_source(kind, plan, cache_path, cache_v2_path)
        ex = AmpedMTTKRP.from_source(source, cfg)
        for mode in range(tensor.nmodes):
            assert np.array_equal(
                ex.mttkrp(factors, mode), baseline.mttkrp(factors, mode)
            )

    def test_amped_kernel_axis(self, tensor, factors):
        """The config's kernel knob end-to-end: numpy stays bit-identical
        to the default, ``auto`` pins a concrete available tier whose
        output is within the fused tolerance, and the resolved name is
        queryable from the pinned config."""
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU)
        baseline = AmpedMTTKRP(tensor, cfg)
        pinned = AmpedMTTKRP(tensor, cfg.replace(kernel="numpy"))
        auto = AmpedMTTKRP(tensor, cfg.replace(kernel="auto"))
        assert auto.config.kernel in KERNEL_NAMES  # concrete after init
        assert auto.config.resolved_kernel() == auto.config.kernel
        for mode in range(tensor.nmodes):
            want = baseline.mttkrp(factors, mode)
            assert np.array_equal(pinned.mttkrp(factors, mode), want)
            assert np.allclose(
                auto.mttkrp(factors, mode),
                want,
                rtol=EXEC_FUSED_RTOL,
                atol=EXEC_FUSED_ATOL,
            )

    def test_source_backed_executor_stays_lazy(self, tensor, plan, cache_path):
        """Construction from a source must not materialize the whole plan
        (workload stats come off the key columns and shard metadata)."""
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU)
        ex = AmpedMTTKRP.from_shard_cache(cache_path, cfg)
        assert ex._plan is None  # lazy until .partition_plan is asked for
        assert ex.workload.nnz == tensor.nnz
        assert ex.partition_plan.nmodes == tensor.nmodes  # materializes
        assert ex._plan is not None

    def test_workload_matches_in_memory(self, tensor, cache_path):
        """from_source and from_plan produce the same workload descriptor,
        so out-of-core simulation timing equals the in-memory one."""
        import numpy as np

        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU)
        mem = AmpedMTTKRP(tensor, cfg).workload
        ooc = AmpedMTTKRP.from_shard_cache(cache_path, cfg).workload
        assert ooc.shape == mem.shape and ooc.nnz == mem.nnz
        for a, b in zip(ooc.modes, mem.modes):
            assert np.array_equal(a.shard_nnz, b.shard_nnz)
            assert np.array_equal(a.assignment, b.assignment)
            assert np.array_equal(a.rows_per_gpu, b.rows_per_gpu)
            assert a.factor_hit == b.factor_hit

    def test_from_shard_cache_normalizes_config(self, tensor, factors, cache_path):
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU)
        ex = AmpedMTTKRP.from_shard_cache(cache_path, cfg)
        assert ex.config.out_of_core is True
        assert str(cache_path) in ex.config.shard_cache
        # auto resolved to the cache-model batch because the source streams
        assert ex.engine.batch_size == auto_batch_size(ex.cost, 6, 3)
        baseline = AmpedMTTKRP(tensor, cfg)
        for mode in range(tensor.nmodes):
            assert np.array_equal(
                ex.mttkrp(factors, mode), baseline.mttkrp(factors, mode)
            )

    def test_from_shard_cache_autodetects_v2_and_normalizes_config(
        self, tensor, factors, cache_v2_path
    ):
        """from_shard_cache on a v2 cache opens the chunked source and
        records the codec/chunk size so host accounting charges the
        decompression staging — and stays bit-identical to in-memory."""
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig
        from repro.core.simulate import host_memory_plan

        cfg = AmpedConfig(n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU)
        with AmpedMTTKRP.from_shard_cache(cache_v2_path, cfg) as ex:
            assert isinstance(ex.source, CompressedChunkSource)
            assert ex.config.out_of_core is True
            assert ex.config.cache_codec == "zlib"
            assert ex.config.cache_chunk_nnz == 128
            plan = host_memory_plan(ex.workload, ex.config, ex.cost)
            lanes = ex.config.stream_lanes()
            assert plan["decompress_staging"] == (
                lanes * 2 * 128 * ex.cost.host_element_bytes(tensor.nmodes)
            )
            baseline = AmpedMTTKRP(tensor, cfg)
            for mode in range(tensor.nmodes):
                assert np.array_equal(
                    ex.mttkrp(factors, mode), baseline.mttkrp(factors, mode)
                )

    def test_run_iteration_out_of_core(self, tensor, factors, cache_path):
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(
            n_gpus=N_GPUS, rank=6, shards_per_gpu=SHARDS_PER_GPU, workers=2
        )
        ex = AmpedMTTKRP.from_shard_cache(cache_path, cfg)
        outputs, result = ex.run_iteration(factors)
        assert result.ok
        for mode, out in enumerate(outputs):
            assert np.allclose(
                out,
                mttkrp_coo_reference(tensor, factors, mode),
                rtol=REF_RTOL,
                atol=REF_ATOL,
            )

    def test_tensor_and_source_mutually_exclusive(self, tensor, plan):
        from repro.core.amped import AmpedMTTKRP

        with pytest.raises(ReproError, match="either tensor or source"):
            AmpedMTTKRP(tensor, source=InMemorySource(plan))
        with pytest.raises(ReproError, match="tensor .*or a source|source"):
            AmpedMTTKRP(None)

    def test_source_gpu_count_checked(self, cache_path):
        from repro.core.amped import AmpedMTTKRP
        from repro.core.config import AmpedConfig

        source = MmapNpzSource(cache_path, n_gpus=2, shards_per_gpu=2)
        with pytest.raises(ReproError, match="GPUs"):
            AmpedMTTKRP.from_source(source, AmpedConfig(n_gpus=4))
