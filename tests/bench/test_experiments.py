"""Tests for the experiment harness: every figure/table regenerates with the
paper's qualitative shape."""

import pytest

from repro.bench import experiments as E
from repro.core.config import AmpedConfig

#: smaller shard count to keep the full suite fast; shapes are insensitive
CFG = AmpedConfig(shards_per_gpu=8)


@pytest.fixture(scope="module")
def fig5():
    return E.fig5(CFG)


@pytest.fixture(scope="module")
def fig6():
    return E.fig6(CFG)


@pytest.fixture(scope="module")
def fig9():
    return E.fig9(CFG)


class TestTables:
    def test_table1_rows(self):
        r = E.table1()
        assert len(r.data["rows"]) == 6  # AMPED + 5 baselines
        assert "AMPED" in r.text

    def test_table3_lists_all_datasets(self):
        r = E.table3()
        for name in ("amazon", "patents", "reddit", "twitch"):
            assert name in r.text
        assert "1.7B" in r.text  # Amazon's nonzero count, Table 3 notation


class TestFig5:
    def test_geomean_near_paper(self, fig5):
        """Paper: 5.1x geomean over state-of-the-art GPU baselines."""
        assert 3.5 <= fig5.data["geomean_speedup"] <= 7.5

    def test_oom_pattern(self, fig5):
        t = fig5.data["times"]
        assert t["amazon"]["mm-csf"] is not None
        assert t["patents"]["mm-csf"] is None
        assert t["reddit"]["hicoo-gpu"] is None
        assert t["twitch"]["flycoo-gpu"] is not None
        assert t["amazon"]["flycoo-gpu"] is None

    def test_amped_wins_billion_tensors(self, fig5):
        t = fig5.data["times"]
        for name in ("amazon", "patents", "reddit"):
            amped = t[name]["amped"]
            for b, v in t[name].items():
                if b != "amped" and v is not None:
                    assert v > amped

    def test_flycoo_wins_twitch(self, fig5):
        t = fig5.data["times"]
        assert t["twitch"]["flycoo-gpu"] < t["twitch"]["amped"]


class TestFig6:
    def test_ratio_band(self, fig6):
        """Paper: 5.3x-10.3x; accept a 4x-12x modelling band."""
        for name, ratio in fig6.data["ratios"].items():
            assert 4.0 <= ratio <= 12.0, name


class TestFig7And8:
    def test_breakdown_fractions(self):
        r = E.fig7(CFG)
        for name, bd in r.data["breakdowns"].items():
            assert sum(bd.values()) == pytest.approx(1.0)
            assert bd["computation"] > 0

    def test_streaming_dominates_comm_for_patents(self):
        r = E.fig7(CFG)
        bd = r.data["breakdowns"]["patents"]
        assert bd["host_gpu_comm"] > bd["gpu_gpu_comm"]

    def test_imbalance_shape(self):
        """Paper Figure 8: small overheads, Twitch the worst."""
        r = E.fig8(CFG)
        ov = r.data["overheads"]
        assert ov["twitch"] == max(ov.values())
        for name in ("amazon", "patents", "reddit"):
            assert ov[name] < 0.03


class TestFig9:
    def test_speedup_monotone_in_gpus(self, fig9):
        for name, times in fig9.data["times"].items():
            assert times[1] >= times[2] >= times[3] >= times[4]

    def test_geomeans_in_band(self, fig9):
        geo = fig9.data["geomeans"]
        assert 1.3 <= geo[2] <= 2.0
        assert geo[2] < geo[3] < geo[4]
        assert geo[4] >= 2.2


class TestFig10:
    def test_amped_preprocessing_costs_more(self):
        r = E.fig10(CFG)
        for name, d in r.data.items():
            assert d["amped"] > d["blco"], name


class TestHeadline:
    def test_headline_composes(self, fig5, fig6, fig9):
        r = E.headline(CFG)
        assert r.data["baseline_geomean"] == pytest.approx(
            fig5.data["geomean_speedup"]
        )
        assert "paper: 5.1x" in r.text
