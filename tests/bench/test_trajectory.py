"""Tests for the versioned benchmark trajectory (repro.bench.trajectory).

Synthetic trial records only — no real timing runs. Covers the schema
round-trip, version gating, structural validation, the bootstrap verdict
machinery (regression / improvement / tie plus new / dropped cells), and
the markdown report's load-bearing content.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    DEFAULT_NOISE_BAND,
    TRAJECTORY_VERSION,
    bootstrap_ratio_ci,
    build_trajectory,
    compare_trajectories,
    load_trajectory,
    render_report,
    save_trajectory,
    validate_trajectory,
)
from repro.bench.trials import TRIAL_RECORD_VERSION
from repro.errors import ReproError


def _example_plan() -> dict:
    """One real serialized ExecutionPlan, built once and shared by the
    synthetic records (v2 validation checks its embedded fingerprint)."""
    from repro.core.config import AmpedConfig
    from repro.datasets.profiles import profile_by_name
    from repro.datasets.synthetic import materialize
    from repro.engine.plan import plan_tensor

    tensor = materialize(profile_by_name("twitch"), 300, seed=0)
    cfg = AmpedConfig(n_gpus=2, shards_per_gpu=2, rank=4)
    return plan_tensor(tensor, cfg).to_dict()


EXAMPLE_PLAN = _example_plan()


def make_record(cell: str, times: list[float], predicted: float = 0.01) -> dict:
    """A minimal schema-complete synthetic trial record."""
    from statistics import median

    measured = float(median(times))
    return {
        "record_version": TRIAL_RECORD_VERSION,
        "cell": cell,
        "spec": {"dataset": "twitch", "source": "inmem"},
        "config_fingerprint": "f" * 16,
        "plan": dict(EXAMPLE_PLAN),
        "plan_fingerprint": EXAMPLE_PLAN["fingerprint"],
        "wall_times_s": list(times),
        "median_s": measured,
        "predicted_total_s": predicted,
        "prediction_error": (predicted - measured) / measured,
    }


def make_trajectory(cells: dict[str, list[float]], **kw) -> dict:
    return build_trajectory(
        [make_record(c, t) for c, t in cells.items()], **kw
    )


class TestSchemaRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        traj = make_trajectory(
            {"a": [0.01, 0.011, 0.012], "b": [0.02, 0.02, 0.021]},
            label="t", git_rev="abc1234", host="h",
        )
        path = save_trajectory(tmp_path / "BENCH_t.json", traj)
        loaded = load_trajectory(path)
        assert loaded == traj
        # the on-disk form is plain, stable JSON
        raw = json.loads(path.read_text())
        assert raw["version"] == TRAJECTORY_VERSION
        assert len(raw["trials"]) == 2

    def test_version_mismatch_rejected_with_clear_error(self, tmp_path):
        traj = make_trajectory({"a": [0.01]})
        traj["version"] = TRAJECTORY_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(traj))
        with pytest.raises(ReproError, match="version") as exc:
            load_trajectory(path)
        # the error names the file, both versions, and the fix
        assert str(path) in str(exc.value)
        assert "repro bench run" in str(exc.value)

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read trajectory"):
            load_trajectory(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="not valid JSON"):
            load_trajectory(bad)


class TestValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(ReproError, match="JSON object"):
            validate_trajectory([1, 2, 3])

    def test_missing_trial_keys_named(self):
        traj = make_trajectory({"a": [0.01]})
        del traj["trials"][0]["predicted_total_s"]
        with pytest.raises(ReproError, match="predicted_total_s"):
            validate_trajectory(traj)

    def test_empty_or_nonpositive_times_rejected(self):
        traj = make_trajectory({"a": [0.01]})
        traj["trials"][0]["wall_times_s"] = []
        with pytest.raises(ReproError, match="wall_times_s"):
            validate_trajectory(traj)
        traj["trials"][0]["wall_times_s"] = [0.01, -0.5]
        with pytest.raises(ReproError, match="wall_times_s"):
            validate_trajectory(traj)

    def test_duplicate_cells_rejected(self):
        rec = make_record("same", [0.01])
        with pytest.raises(ReproError, match="duplicate cell"):
            build_trajectory([rec, dict(rec)])

    # ---- v2 plan gate -------------------------------------------------
    def test_v2_record_requires_plan_keys(self):
        traj = make_trajectory({"a": [0.01]})
        del traj["trials"][0]["plan"]
        with pytest.raises(ReproError, match="plan"):
            validate_trajectory(traj)

    def test_tampered_plan_rejected(self):
        traj = make_trajectory({"a": [0.01]})
        plan = dict(traj["trials"][0]["plan"])
        plan["backend"] = "process"  # edited after resolution
        traj["trials"][0]["plan"] = plan
        with pytest.raises(ReproError, match="fingerprint"):
            validate_trajectory(traj)

    def test_plan_fingerprint_must_match_recorded_one(self):
        traj = make_trajectory({"a": [0.01]})
        traj["trials"][0]["plan_fingerprint"] = "0" * 16
        with pytest.raises(ReproError, match="plan_fingerprint"):
            validate_trajectory(traj)

    def test_v1_records_are_exempt_from_plan_gate(self):
        rec = make_record("legacy", [0.01])
        rec["record_version"] = 1
        del rec["plan"], rec["plan_fingerprint"]
        validate_trajectory(build_trajectory([rec]))


class TestBootstrapCi:
    def test_deterministic_and_ordered(self):
        a = [0.010, 0.011, 0.012, 0.010, 0.011]
        b = [0.020, 0.021, 0.019, 0.020, 0.022]
        lo1, hi1 = bootstrap_ratio_ci(a, b, seed=3)
        lo2, hi2 = bootstrap_ratio_ci(a, b, seed=3)
        assert (lo1, hi1) == (lo2, hi2)
        assert lo1 <= hi1
        assert hi1 < 1.0  # a is clearly ~2x faster than b

    def test_single_repeat_degenerates_to_point(self):
        lo, hi = bootstrap_ratio_ci([0.01], [0.02])
        assert lo == hi == pytest.approx(0.5)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ReproError, match="non-empty"):
            bootstrap_ratio_ci([], [0.01])
        with pytest.raises(ReproError, match="positive"):
            bootstrap_ratio_ci([0.0], [0.01])


class TestVerdicts:
    def test_regression_improvement_tie(self):
        old = make_trajectory({
            "slower": [0.010, 0.010, 0.011, 0.010, 0.010],
            "faster": [0.010, 0.010, 0.011, 0.010, 0.010],
            "same": [0.010, 0.010, 0.011, 0.010, 0.010],
        })
        new = make_trajectory({
            "slower": [0.020, 0.021, 0.020, 0.020, 0.022],
            "faster": [0.005, 0.005, 0.005, 0.006, 0.005],
            "same": [0.010, 0.011, 0.010, 0.010, 0.010],
        })
        rows = {r["cell"]: r for r in compare_trajectories(new, old)}
        assert rows["slower"]["verdict"] == "regression"
        assert rows["faster"]["verdict"] == "improvement"
        assert rows["same"]["verdict"] == "tie"
        assert rows["slower"]["ratio"] == pytest.approx(2.0)
        assert rows["faster"]["ratio"] == pytest.approx(0.5)

    def test_band_widens_tie(self):
        # a 10% slowdown with tight repeats: regression at the default
        # band, tie when the caller accepts 20% noise
        old = make_trajectory({"c": [0.010] * 5})
        new = make_trajectory({"c": [0.011] * 5})
        assert compare_trajectories(new, old)[0]["verdict"] == "regression"
        assert (
            compare_trajectories(new, old, band=0.20)[0]["verdict"] == "tie"
        )
        assert DEFAULT_NOISE_BAND < 0.20

    def test_new_and_dropped_cells_reported(self):
        old = make_trajectory({"kept": [0.01], "gone": [0.01]})
        new = make_trajectory({"kept": [0.01], "added": [0.01]})
        rows = {r["cell"]: r for r in compare_trajectories(new, old)}
        assert rows["added"]["verdict"] == "new"
        assert rows["added"]["ratio"] is None
        assert rows["gone"]["verdict"] == "dropped"
        assert rows["gone"]["median_new_s"] is None
        assert rows["kept"]["verdict"] == "tie"


class TestRenderReport:
    def test_report_lists_trials_and_prediction_error(self):
        traj = make_trajectory(
            {"cellA": [0.01, 0.01, 0.01]}, label="pr6", git_rev="abc"
        )
        text = render_report(traj)
        assert "cellA" in text
        assert "pred err" in text
        assert "Mean |prediction error|" in text
        assert "pr6" in text and "abc" in text

    def test_report_with_previous_has_verdict_summary(self):
        old = make_trajectory({"c": [0.010] * 5}, label="old")
        new = make_trajectory({"c": [0.030] * 5}, label="new")
        text = render_report(new, old)
        assert "regression" in text
        assert "Geometric-mean ratio" in text
        assert "1 regression" in text
