"""Tests for bench metrics and report rendering."""

import pytest

from repro.bench.metrics import geometric_mean, speedup, speedups_over
from repro.bench.report import render_table
from repro.errors import ReproError


class TestMetrics:
    def test_geomean_basic(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ReproError):
            geometric_mean([])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ReproError):
            speedup(1.0, 0.0)

    def test_speedups_over_intersects_keys(self):
        s = speedups_over({"a": 1.0, "b": 2.0}, {"a": 5.0, "c": 9.0})
        assert s == {"a": 5.0}


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"], [["x", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) <= 2  # header sep may differ by trailing spaces

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text

    def test_cell_count_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])
