"""Tests for sweep expansion and the trial runner (repro.bench.trials/runner).

Sweep expansion and spec validation are pure and run everywhere; the
real-execution tests run one tiny trial per source kind (resident and
compressed) so the whole measure→record→trajectory path is exercised in a
few hundred milliseconds.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import DEFAULT_SWEEP, SMOKE_SWEEP, run_bench
from repro.bench.trials import (
    TRIAL_RECORD_VERSION,
    TrialSpec,
    expand_sweep,
    run_trial,
)
from repro.bench.trajectory import load_trajectory
from repro.errors import ReproError


class TestTrialSpec:
    def test_cell_key_encodes_identity(self):
        spec = TrialSpec(
            dataset="twitch", nnz=2000, source="chunked", codec="zlib",
            backend="thread", workers=2, prefetch=True, rank=8,
        )
        assert spec.cell == "twitch/2000/chunked+zlib/threadx2/pf/r8"

    def test_cell_key_pins_kernel_only_when_explicit(self):
        # auto cells keep the pre-registry key layout so old trajectories
        # line up; pinned tiers get their own cells
        auto = TrialSpec(nnz=500, rank=4)
        assert auto.kernel == "auto"
        assert "/k-" not in auto.cell
        pinned = TrialSpec(nnz=500, rank=4, kernel="numpy")
        assert pinned.cell == auto.cell + "/k-numpy"
        assert pinned.fingerprint() != auto.fingerprint()

    def test_bad_kernel_rejected(self):
        with pytest.raises(ReproError, match="kernel"):
            TrialSpec(kernel="fortran")

    def test_fingerprint_stable_and_sensitive(self):
        a = TrialSpec()
        assert a.fingerprint() == TrialSpec().fingerprint()
        assert a.fingerprint() != TrialSpec(rank=9).fingerprint()

    def test_validation(self):
        with pytest.raises(ReproError, match="source"):
            TrialSpec(source="carrier-pigeon")
        with pytest.raises(ReproError, match="backend"):
            TrialSpec(backend="gpu")
        with pytest.raises(ReproError, match="codec"):
            TrialSpec(source="inmem", codec="zlib")
        with pytest.raises(ReproError, match="repeats"):
            TrialSpec(repeats=0)
        with pytest.raises(ReproError, match="warmup"):
            TrialSpec(warmup=-1)

    def test_nodes_axis_only_for_cluster(self):
        # the node count is a cluster-only knob, and only cluster cells
        # grow the /nN key segment — pre-cluster cells stay byte-identical
        with pytest.raises(ReproError, match="cluster"):
            TrialSpec(backend="thread", nodes=2)
        with pytest.raises(ReproError, match="nodes"):
            TrialSpec(backend="cluster", nodes=0)
        plain = TrialSpec(nnz=500, rank=4)
        assert "/n" not in plain.cell.replace("/nopf", "")
        clustered = TrialSpec(
            nnz=500, rank=4, backend="cluster", workers=1, nodes=2
        )
        assert clustered.cell.endswith("/n2")
        assert clustered.fingerprint() != plain.fingerprint()


class TestExpandSweep:
    def test_cartesian_product_size(self):
        specs = expand_sweep({
            "datasets": ["twitch"],
            "nnz": [1000, 2000],
            "sources": ["inmem", "chunked:zlib"],
            "backends": ["serial", "thread:4"],
            "prefetch": [False, True],
            "ranks": [4],
            "kernels": ["auto", "numpy"],
        })
        assert len(specs) == 2 * 2 * 2 * 2 * 2
        assert len({s.cell for s in specs}) == len(specs)
        kernels = {s.kernel for s in specs}
        assert kernels == {"auto", "numpy"}

    def test_source_and_backend_suffix_parsing(self):
        specs = expand_sweep({
            "sources": ["chunked:lzma"], "backends": ["process:3"],
        })
        (spec,) = specs
        assert spec.source == "chunked" and spec.codec == "lzma"
        assert spec.backend == "process" and spec.workers == 3

    def test_parallel_backends_default_two_workers(self):
        specs = expand_sweep({"backends": ["thread", "process", "serial"]})
        workers = {s.backend: s.workers for s in specs}
        assert workers == {"thread": 2, "process": 2, "serial": 1}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ReproError, match="unknown sweep axes"):
            expand_sweep({"dataset": ["twitch"]})  # typo: singular

    def test_nodes_axis_expands_cluster_only(self):
        specs = expand_sweep({
            "backends": ["serial", "cluster:1"],
            "nodes": [2, 3],
        })
        by_backend = {}
        for s in specs:
            by_backend.setdefault(s.backend, []).append(s.nodes)
        assert by_backend["serial"] == [None]
        assert sorted(by_backend["cluster"]) == [2, 3]

    def test_builtin_sweeps_expand(self):
        smoke = expand_sweep(SMOKE_SWEEP)
        full = expand_sweep(DEFAULT_SWEEP)
        assert 0 < len(smoke) < len(full)
        # the CI gate must not spawn process pools
        assert all(s.backend != "process" for s in smoke)
        assert any(s.backend == "process" for s in full)
        # both builtin sweeps carry the kernel axis: auto cells (old key
        # layout, comparable across trajectories) plus pinned numpy cells
        # and a 2-node loopback cluster column for the comm oracle gate
        for specs in (smoke, full):
            assert {s.kernel for s in specs} == {"auto", "numpy"}
            assert any(s.backend == "cluster" and s.nodes == 2 for s in specs)


class TestRunTrial:
    def test_inmem_record_schema(self):
        spec = TrialSpec(nnz=500, rank=4, warmup=0, repeats=2)
        rec = run_trial(spec)
        assert rec["record_version"] == TRIAL_RECORD_VERSION
        assert rec["cell"] == spec.cell
        assert rec["config_fingerprint"] == spec.fingerprint()
        assert len(rec["wall_times_s"]) == 2
        assert all(t > 0 for t in rec["wall_times_s"])
        assert rec["median_s"] > 0
        assert rec["predicted_total_s"] > 0
        assert rec["predicted"]["total_s"] == rec["predicted_total_s"]
        assert rec["prediction_error"] == pytest.approx(
            (rec["predicted_total_s"] - rec["median_s"]) / rec["median_s"]
        )
        assert rec["codec_ratio"] is None  # resident source
        assert rec["peak_rss_bytes"] > 0
        assert len(rec["host_profile_hash"]) == 16
        assert rec["resolved_backend"] == "serial"
        assert rec["resolved_kernel"] in ("numpy", "numba", "cc")

    def test_chunked_trial_records_measured_ratio(self, tmp_path):
        spec = TrialSpec(
            nnz=500, rank=4, source="chunked", codec="zlib",
            warmup=0, repeats=1,
        )
        rec = run_trial(spec, workdir=tmp_path)
        assert rec["codec_ratio"] is not None
        assert 0.0 < rec["codec_ratio"] < 1.0
        assert rec["predicted"]["staging_read_s"] > 0

    def test_auto_backend_resolves_in_record(self):
        spec = TrialSpec(nnz=500, rank=4, backend="auto", warmup=0, repeats=1)
        rec = run_trial(spec)
        assert rec["resolved_backend"] in ("serial", "thread", "process")

    def test_pinned_kernel_trial_records_numpy(self):
        spec = TrialSpec(nnz=500, rank=4, kernel="numpy", warmup=0, repeats=1)
        rec = run_trial(spec)
        assert rec["resolved_kernel"] == "numpy"
        assert rec["cell"].endswith("/k-numpy")
        assert rec["comm"] is None  # single-host cells carry no comm record

    def test_cluster_trial_records_comm_oracle(self):
        """A cluster cell measures the factor-row exchange and records it
        next to the model's prediction with a symmetric signed ratio error
        (|error| < 1 means within 2x, on either side)."""
        from repro.bench.trials import _symmetric_ratio_error

        spec = TrialSpec(
            nnz=500, rank=4, backend="cluster", workers=1, nodes=2,
            warmup=1, repeats=2,
        )
        rec = run_trial(spec)
        assert rec["resolved_backend"] == "cluster"
        comm = rec["comm"]
        assert comm["measured_s"] > 0
        assert comm["predicted_s"] > 0
        assert comm["bytes_per_iteration"] > 0
        assert comm["error"] == pytest.approx(_symmetric_ratio_error(
            comm["predicted_s"], comm["measured_s"]
        ))
        # the exchange is a slice of the whole iteration, never more
        assert comm["measured_s"] <= rec["median_s"] * spec.repeats

    @pytest.mark.slow
    def test_smoke_loopback_cell_error_within_tolerance(self):
        """The bug this PR closes: with the v5 per-frame overhead charged
        per exchange hop, the 2-node loopback smoke cell's comm prediction
        lands within 2x of the measurement (|symmetric error| < 1) instead
        of the ~5-8x underprediction band BENCH_8 committed (which the
        old one-sided error definition reported as a mere -0.79..-0.88)."""
        spec = TrialSpec(
            nnz=2000, rank=4, backend="cluster", workers=1, nodes=2,
            warmup=1, repeats=3,
        )
        rec = run_trial(spec)
        comm = rec["comm"]
        assert abs(comm["error"]) < 1.0, comm

    def test_symmetric_error_definition(self):
        """5x misses read as ±4 on either side; the old definition pinned
        every underprediction inside (-1, 0)."""
        from repro.bench.trials import _symmetric_ratio_error

        assert _symmetric_ratio_error(1.0, 5.0) == pytest.approx(-4.0)
        assert _symmetric_ratio_error(5.0, 1.0) == pytest.approx(4.0)
        assert _symmetric_ratio_error(1.0, 1.0) == 0.0
        assert abs(_symmetric_ratio_error(1.0, 1.9)) < 1.0
        assert abs(_symmetric_ratio_error(1.0, 2.1)) > 1.0


class TestRunBench:
    def test_only_filter_and_trajectory_output(self, tmp_path):
        lines = []
        path, traj = run_bench(
            {
                "nnz": [500],
                "sources": ["inmem"],
                "backends": ["serial", "thread:2"],
                "ranks": [4],
                "warmup": 0,
                "repeats": 2,
            },
            out=tmp_path / "traj.json",
            label="unit",
            only="serial",
            progress=lines.append,
        )
        assert path.is_file()
        assert len(traj["trials"]) == 1
        assert "serialx1" in traj["trials"][0]["cell"]
        assert traj["label"] == "unit"
        assert lines  # progress callback was driven
        # the file round-trips through the validated loader
        assert load_trajectory(path)["trials"] == traj["trials"]
