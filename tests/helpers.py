"""Test helpers importable from any test module."""

from __future__ import annotations

import numpy as np


def make_factors(shape, rank: int = 6, seed: int = 99) -> list[np.ndarray]:
    """Deterministic random factor matrices for the given tensor shape."""
    rng = np.random.default_rng(seed)
    return [rng.random((s, rank)) for s in shape]
