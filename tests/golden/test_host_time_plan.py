"""Golden pin of the host-pipeline timing model.

``host_time_plan`` is pure arithmetic over a workload descriptor, a config,
and a host profile, so for the committed synthetic profile
(``data/host_profile.json``) its output on the ``zipf3`` golden workload is
exactly reproducible. ``data/host_time_plan.json`` pins every term for a
matrix of backend/out-of-core configs; a diff here is a deliberate
cost-model change and must be regenerated with ``make_golden.py`` and
explained in review — exactly like the numerical golden data.
"""

from __future__ import annotations

import json
import math

import pytest

from make_golden import DATA_DIR, HOST_TIME_CASES, compute_host_time_plans


@pytest.fixture(scope="module")
def pinned() -> dict:
    return json.loads((DATA_DIR / "host_time_plan.json").read_text())


@pytest.fixture(scope="module")
def computed() -> dict:
    return compute_host_time_plans()


def test_every_case_is_pinned(pinned):
    assert set(pinned) == set(HOST_TIME_CASES)


@pytest.mark.parametrize("case", sorted(HOST_TIME_CASES))
def test_host_time_plan_matches_pin(case, pinned, computed):
    expected, actual = pinned[case], computed[case]
    assert set(expected) == set(actual)
    for key, want in expected.items():
        got = actual[key]
        if isinstance(want, float):
            assert math.isclose(got, want, rel_tol=1e-12, abs_tol=0.0), (
                f"{case}.{key}: pinned {want!r}, computed {got!r}"
            )
        else:
            assert got == want, f"{case}.{key}: pinned {want!r}, computed {got!r}"


def test_total_is_the_sum_of_visible_terms(computed):
    for case, plan in computed.items():
        visible = (
            plan["compute_s"]
            + plan["dispatch_s"]
            + plan["ipc_s"]
            + plan["stall_s"]
            + plan["prefetch_overhead_s"]
        )
        assert math.isclose(plan["total_s"], visible, rel_tol=1e-12), case
