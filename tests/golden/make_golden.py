"""Golden-regression data: fixed-seed tensors with checked-in expected
outputs.

Run ``PYTHONPATH=src python tests/golden/make_golden.py`` to (re)generate
``tests/golden/data/``. Regeneration is a deliberate act: the committed
files pin the production MTTKRP numerics bit-for-bit, so any diff in them is
a numerical behavior change that must be explained in review, not an
accident.

Each case stores, in one ``.npz``:

* the tensor (``indices``, ``values``, ``shape``) and its fixed-seed factor
  matrices (``factor_0..N-1``);
* the expected MTTKRP output of every mode (``mttkrp_0..N-1``), computed by
  the streaming engine at its default (eager) granularity — bit-identical
  across every ``(batch_size, backend, prefetch)`` configuration by design;
* the expected CP-ALS final fit (``cpals_fit``, with ``cpals_rank`` /
  ``cpals_iters``), computed with the AMPED engine as the MTTKRP backend.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.cpd.als import cp_als
from repro.tensor.coo import SparseTensorCOO
from repro.tensor.generate import lowrank_coo, random_coo, zipf_coo

DATA_DIR = pathlib.Path(__file__).parent / "data"

#: name -> (tensor builder, factor seed, rank, AmpedConfig kwargs)
CASES: dict[str, dict] = {
    "zipf3": dict(
        build=lambda: zipf_coo((30, 20, 25), 600, exponents=1.1, seed=2026),
        factor_seed=7,
        rank=5,
        config=dict(n_gpus=4, shards_per_gpu=4),
        cpals_iters=8,
    ),
    "lowrank3": dict(
        build=lambda: lowrank_coo((24, 18, 15), 900, rank=3, noise=0.02, seed=99),
        factor_seed=3,
        rank=4,
        config=dict(n_gpus=2, shards_per_gpu=3),
        cpals_iters=10,
    ),
    "rand4": dict(
        build=lambda: random_coo((12, 9, 7, 5), 350, seed=11),
        factor_seed=13,
        rank=4,
        config=dict(n_gpus=3, shards_per_gpu=2),
        cpals_iters=6,
    ),
}


def build_case(name: str):
    """(tensor, factors, rank, config) of one golden case."""
    spec = CASES[name]
    tensor: SparseTensorCOO = spec["build"]()
    rng = np.random.default_rng(spec["factor_seed"])
    factors = [rng.random((s, spec["rank"])) for s in tensor.shape]
    config = AmpedConfig(rank=spec["rank"], **spec["config"])
    return tensor, factors, spec["rank"], config


def golden_path(name: str) -> pathlib.Path:
    return DATA_DIR / f"{name}.npz"


def compute_expected(name: str) -> dict[str, np.ndarray]:
    """All arrays stored in a case's .npz, freshly computed."""
    tensor, factors, rank, config = build_case(name)
    ex = AmpedMTTKRP(tensor, config, name=name)
    payload: dict[str, np.ndarray] = {
        "indices": tensor.indices,
        "values": tensor.values,
        "shape": np.array(tensor.shape, dtype=np.int64),
    }
    for m, f in enumerate(factors):
        payload[f"factor_{m}"] = f
    for m in range(tensor.nmodes):
        payload[f"mttkrp_{m}"] = ex.mttkrp(factors, m)
    n_iters = CASES[name]["cpals_iters"]
    res = cp_als(
        tensor, rank=rank, mttkrp=ex.mttkrp, n_iters=n_iters, tol=0.0, seed=42
    )
    payload["cpals_fit"] = np.float64(res.final_fit)
    payload["cpals_rank"] = np.int64(rank)
    payload["cpals_iters"] = np.int64(n_iters)
    return payload


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for name in CASES:
        payload = compute_expected(name)
        np.savez(golden_path(name), **payload)
        nnz = payload["values"].shape[0]
        print(
            f"wrote {golden_path(name)} (nnz={nnz}, "
            f"fit={float(payload['cpals_fit']):.6f})"
        )


if __name__ == "__main__":
    main()
