"""Golden-regression data: fixed-seed tensors with checked-in expected
outputs.

Run ``PYTHONPATH=src python tests/golden/make_golden.py`` to (re)generate
``tests/golden/data/``. Regeneration is a deliberate act: the committed
files pin the production MTTKRP numerics bit-for-bit, so any diff in them is
a numerical behavior change that must be explained in review, not an
accident.

Each case stores, in one ``.npz``:

* the tensor (``indices``, ``values``, ``shape``) and its fixed-seed factor
  matrices (``factor_0..N-1``);
* the expected MTTKRP output of every mode (``mttkrp_0..N-1``), computed by
  the streaming engine at its default (eager) granularity — bit-identical
  across every ``(batch_size, backend, prefetch)`` configuration by design;
* the expected CP-ALS final fit (``cpals_fit``, with ``cpals_rank`` /
  ``cpals_iters``), computed with the AMPED engine as the MTTKRP backend.

It also pins the host-pipeline timing model: ``host_time_plan.json`` holds
the exact :func:`repro.core.simulate.host_time_plan` output for the
committed synthetic host profile (``host_profile.json``) over a matrix of
backend/out-of-core configs on the ``zipf3`` workload — the model is pure
arithmetic, so any diff is a deliberate cost-model change.

``execution_plan.json`` pins the plan layer the same way: the serialized
:class:`repro.engine.plan.ExecutionPlan` (resolved axes, pricing, and
sha256 fingerprint) for a (source × backend × prefetch) matrix against
the committed profile — any resolver or pricing change shows up as a
fingerprint diff that must be regenerated deliberately.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.core.simulate import host_time_plan
from repro.cpd.als import cp_als
from repro.engine.costmodel import HostProfile, load_host_profile
from repro.tensor.coo import SparseTensorCOO
from repro.tensor.generate import lowrank_coo, random_coo, zipf_coo

DATA_DIR = pathlib.Path(__file__).parent / "data"

#: the committed synthetic calibration pinned by ``host_profile.json`` —
#: deterministic mid-range values (NOT this machine's measurements), written
#: at the current ``HOST_PROFILE_VERSION`` so a profile-format bump
#: regenerates the golden file here instead of orphaning it at an
#: unreadable old version.
GOLDEN_HOST_PROFILE = HostProfile(
    hostname="golden-host",
    created="2026-07-29T00:00:00+00:00",
    quick=False,
    memcpy_bandwidth=1.0e10,
    reduce_bandwidth=2.0e9,
    kernel_reduce_bandwidth={
        "numpy": 2.0e9,
        "numba": 8.0e9,
        "cc": 6.0e9,
    },
    mmap_read_bandwidth=5.0e9,
    chunk_read_bandwidth=2.5e9,
    decompress_bandwidth={
        "none": 1.0e10,
        "zlib": 5.0e8,
        "lzma": 1.0e8,
        "zstd": 1.5e9,
    },
    serial_dispatch_s=4e-6,
    thread_dispatch_s=2e-5,
    process_task_s=8e-5,
    pipe_bandwidth=2.0e9,
    thread_efficiency=0.6,
    process_efficiency=0.75,
    prefetch_overhead_s=1e-5,
    loopback_bandwidth=1.5e9,
    loopback_latency_s=5e-5,
    loopback_frame_overhead_s=5e-4,
    stream_cache_fraction=0.03125,
)

#: config matrix pinned by host_time_plan.json (name -> AmpedConfig kwargs);
#: the workload is the ``zipf3`` case's, the profile the committed
#: ``host_profile.json``.
HOST_TIME_CASES: dict[str, dict] = {
    "serial_resident": {},
    "thread2_resident": dict(backend="thread", workers=2),
    "process2_prefetch_resident": dict(
        backend="process", workers=2, prefetch=True
    ),
    "serial_cc_kernel": dict(kernel="cc"),
    "thread2_numba_kernel": dict(backend="thread", workers=2, kernel="numba"),
    "serial_mmap_oc": dict(out_of_core=True, shard_cache="golden.npz"),
    "process2_zlib_oc_prefetch": dict(
        backend="process",
        workers=2,
        prefetch=True,
        out_of_core=True,
        shard_cache="golden_v2.npz",
        cache_codec="zlib",
        cache_chunk_nnz=4096,
    ),
}


def compute_host_time_plans() -> dict[str, dict]:
    """host_time_plan output per HOST_TIME_CASES entry (zipf3 workload)."""
    tensor, _factors, rank, config = build_case("zipf3")
    profile = load_host_profile(DATA_DIR / "host_profile.json")
    ex = AmpedMTTKRP(tensor, config, name="zipf3")
    plans = {}
    for case, kw in HOST_TIME_CASES.items():
        plans[case] = host_time_plan(
            ex.workload, config.replace(**kw), ex.cost, profile
        )
    return plans

#: config matrix pinned by execution_plan.json (name -> AmpedConfig
#: kwargs): the full resolved+priced ExecutionPlan — fingerprint included —
#: for a (source × backend × prefetch) matrix over the ``zipf3`` workload,
#: priced against the committed ``host_profile.json``. Only the ``numpy``
#: kernel appears (compiled tiers resolve by host availability, which
#: would make the pinned fingerprints host-dependent).
EXECUTION_PLAN_CASES: dict[str, dict] = {
    "inmem_serial": {},
    "inmem_thread2_prefetch": dict(backend="thread", workers=2, prefetch=True),
    "inmem_process2": dict(backend="process", workers=2),
    "mmap_oc_serial": dict(out_of_core=True, shard_cache="golden.npz"),
    "mmap_oc_serial_prefetch": dict(
        out_of_core=True, shard_cache="golden.npz", prefetch=True
    ),
    "chunked_oc_thread2_prefetch": dict(
        backend="thread",
        workers=2,
        prefetch=True,
        out_of_core=True,
        shard_cache="golden_v2.npz",
        cache_codec="zlib",
        cache_chunk_nnz=4096,
    ),
    "cluster2_serial": dict(backend="cluster", nodes=2),
}


def compute_execution_plans() -> dict[str, dict]:
    """Serialized ExecutionPlan per EXECUTION_PLAN_CASES entry (zipf3)."""
    from repro.engine.plan import plan_execution

    tensor, _factors, _rank, config = build_case("zipf3")
    profile = load_host_profile(DATA_DIR / "host_profile.json")
    ex = AmpedMTTKRP(tensor, config, name="zipf3")
    plans = {}
    for case, kw in EXECUTION_PLAN_CASES.items():
        plans[case] = plan_execution(
            config.replace(**kw), ex.workload, cost=ex.cost, profile=profile
        ).to_dict()
    return plans


#: name -> (tensor builder, factor seed, rank, AmpedConfig kwargs)
CASES: dict[str, dict] = {
    "zipf3": dict(
        build=lambda: zipf_coo((30, 20, 25), 600, exponents=1.1, seed=2026),
        factor_seed=7,
        rank=5,
        config=dict(n_gpus=4, shards_per_gpu=4),
        cpals_iters=8,
    ),
    "lowrank3": dict(
        build=lambda: lowrank_coo((24, 18, 15), 900, rank=3, noise=0.02, seed=99),
        factor_seed=3,
        rank=4,
        config=dict(n_gpus=2, shards_per_gpu=3),
        cpals_iters=10,
    ),
    "rand4": dict(
        build=lambda: random_coo((12, 9, 7, 5), 350, seed=11),
        factor_seed=13,
        rank=4,
        config=dict(n_gpus=3, shards_per_gpu=2),
        cpals_iters=6,
    ),
}


def build_case(name: str):
    """(tensor, factors, rank, config) of one golden case."""
    spec = CASES[name]
    tensor: SparseTensorCOO = spec["build"]()
    rng = np.random.default_rng(spec["factor_seed"])
    factors = [rng.random((s, spec["rank"])) for s in tensor.shape]
    config = AmpedConfig(rank=spec["rank"], **spec["config"])
    return tensor, factors, spec["rank"], config


def golden_path(name: str) -> pathlib.Path:
    return DATA_DIR / f"{name}.npz"


def compute_expected(name: str) -> dict[str, np.ndarray]:
    """All arrays stored in a case's .npz, freshly computed."""
    tensor, factors, rank, config = build_case(name)
    ex = AmpedMTTKRP(tensor, config, name=name)
    payload: dict[str, np.ndarray] = {
        "indices": tensor.indices,
        "values": tensor.values,
        "shape": np.array(tensor.shape, dtype=np.int64),
    }
    for m, f in enumerate(factors):
        payload[f"factor_{m}"] = f
    for m in range(tensor.nmodes):
        payload[f"mttkrp_{m}"] = ex.mttkrp(factors, m)
    n_iters = CASES[name]["cpals_iters"]
    res = cp_als(
        tensor, rank=rank, mttkrp=ex.mttkrp, n_iters=n_iters, tol=0.0, seed=42
    )
    payload["cpals_fit"] = np.float64(res.final_fit)
    payload["cpals_rank"] = np.int64(rank)
    payload["cpals_iters"] = np.int64(n_iters)
    return payload


def main() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for name in CASES:
        payload = compute_expected(name)
        np.savez(golden_path(name), **payload)
        nnz = payload["values"].shape[0]
        print(
            f"wrote {golden_path(name)} (nnz={nnz}, "
            f"fit={float(payload['cpals_fit']):.6f})"
        )
    profile_path = GOLDEN_HOST_PROFILE.save(DATA_DIR / "host_profile.json")
    print(f"wrote {profile_path} (version {GOLDEN_HOST_PROFILE.version})")
    plans = compute_host_time_plans()
    out = DATA_DIR / "host_time_plan.json"
    out.write_text(json.dumps(plans, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(plans)} host-pipeline plans)")
    eplans = compute_execution_plans()
    out = DATA_DIR / "execution_plan.json"
    out.write_text(json.dumps(eplans, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(eplans)} execution plans)")


if __name__ == "__main__":
    main()
