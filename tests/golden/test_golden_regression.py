"""Golden-regression tests: fixed-seed tensors vs checked-in expected outputs.

The ``.npz`` files under ``data/`` pin the production MTTKRP numerics. The
engine family (StreamingExecutor at any batch granularity, on any execution
backend — serial, thread pool, or shared-memory process pool — with or
without prefetch, and AmpedMTTKRP which runs on it) must reproduce them
**bit-for-bit** — the segment-aligned batching guarantees every
configuration performs the same reductions in the same order, and every
backend returns partial results in deterministic batch order. Format baselines reduce in a different order
(CSF trees, HiCOO blocks, BLCO linearization), so they are held to an
extremely tight tolerance instead: the measured worst-case deviation at this
scale is ~1e-15 relative, and the 1e-12 gate leaves three orders of
magnitude of margin while still catching any real numerical change.
Compiled kernel tiers from the registry (``numba``/``cc``) re-associate
only the per-segment sum, so they get the same documented tolerance gate
(``FUSED_RTOL``/``FUSED_ATOL`` from :mod:`repro.tensor.kernelreg`); the
numpy tier — and every tier falling back to it — stays on the bit-exact
contract.

Regenerate with ``PYTHONPATH=src python tests/golden/make_golden.py`` —
only when a numerical change is intentional.
"""

from __future__ import annotations

import numpy as np
import pytest

from make_golden import CASES, build_case, golden_path

from repro.baselines.registry import BACKEND_REGISTRY, make_backend
from repro.core.amped import AmpedMTTKRP
from repro.cpd.als import cp_als
from repro.engine import (
    CompressedChunkSource,
    InMemorySource,
    MmapNpzSource,
    ProcessBackend,
    SerialBackend,
    StreamingExecutor,
    SyntheticSource,
    ThreadBackend,
)
from repro.errors import UnsupportedTensorError
from repro.partition.plan import build_partition_plan
from repro.tensor.io import write_shard_cache, write_shard_cache_v2
from repro.tensor.kernelreg import (
    FUSED_ATOL,
    FUSED_RTOL,
    KERNEL_NAMES,
    get_kernel,
)
from repro.tensor.reference import mttkrp_coo_reference, mttkrp_dense_reference

CASE_NAMES = sorted(CASES)

#: format baselines re-associate sums; measured worst case is ~1e-15 relative
BASELINE_RTOL = 1e-12
BASELINE_ATOL = 1e-14
CPALS_FIT_TOL = 1e-10


@pytest.fixture(scope="module", params=CASE_NAMES)
def case(request):
    name = request.param
    tensor, factors, rank, config = build_case(name)
    data = np.load(golden_path(name))
    return name, tensor, factors, rank, config, data


@pytest.fixture(scope="module")
def case_cache(case, tmp_path_factory):
    """Shard cache of the case tensor, for the out-of-core source cells."""
    name, tensor, *_ = case
    return write_shard_cache(
        tensor, tmp_path_factory.mktemp("golden_cache") / f"{name}.npz"
    )


@pytest.fixture(scope="module")
def case_cache_v2(case, tmp_path_factory):
    """v2 chunked/compressed cache of the case tensor (small chunks so
    batches cross chunk boundaries), for the compressed source cells."""
    name, tensor, *_ = case
    return write_shard_cache_v2(
        tensor,
        tmp_path_factory.mktemp("golden_cache_v2") / f"{name}.npz",
        codec="zlib",
        chunk_nnz=97,
    )


@pytest.fixture(scope="module")
def shared_backends():
    """One persistent pool per backend kind for the whole golden matrix."""
    backends = {
        "serial": SerialBackend(),
        "thread": ThreadBackend(3),
        "process": ProcessBackend(2),
    }
    yield backends
    for backend in backends.values():
        backend.close()


def _case_source(kind, name, tensor, config, cache_path):
    if kind == "memory":
        return InMemorySource(
            build_partition_plan(
                tensor, config.n_gpus, shards_per_gpu=config.shards_per_gpu
            )
        )
    if kind == "mmap":
        return MmapNpzSource(
            cache_path,
            n_gpus=config.n_gpus,
            shards_per_gpu=config.shards_per_gpu,
        )
    if kind == "chunked":
        return CompressedChunkSource(
            cache_path,
            n_gpus=config.n_gpus,
            shards_per_gpu=config.shards_per_gpu,
        )
    if kind == "synthetic":
        build = CASES[name]["build"]
        return SyntheticSource(
            build, n_gpus=config.n_gpus, shards_per_gpu=config.shards_per_gpu
        )
    raise AssertionError(kind)


def _expected(data, mode: int) -> np.ndarray:
    return data[f"mttkrp_{mode}"]


class TestGoldenFilesIntact:
    def test_tensor_matches_builder(self, case):
        """The committed tensor bytes equal the fixed-seed builder output."""
        _, tensor, factors, _, _, data = case
        assert np.array_equal(data["indices"], tensor.indices)
        assert np.array_equal(data["values"], tensor.values)
        assert tuple(data["shape"]) == tensor.shape
        for m, f in enumerate(factors):
            assert np.array_equal(data[f"factor_{m}"], f)


class TestEngineBitExact:
    def test_amped_executor(self, case):
        _, tensor, factors, _, config, data = case
        ex = AmpedMTTKRP(tensor, config)
        for m in range(tensor.nmodes):
            assert np.array_equal(ex.mttkrp(factors, m), _expected(data, m))

    @pytest.mark.parametrize("batch_size", [1, 17, None])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_streaming_engine(self, case, batch_size, workers):
        """Every engine granularity reproduces the golden bits exactly."""
        _, tensor, factors, _, config, data = case
        plan = build_partition_plan(
            tensor, config.n_gpus, shards_per_gpu=config.shards_per_gpu
        )
        engine = StreamingExecutor(plan, batch_size=batch_size, workers=workers)
        for m in range(tensor.nmodes):
            assert np.array_equal(engine.mttkrp(factors, m), _expected(data, m))

    @pytest.mark.parametrize(
        "source_kind", ["memory", "mmap", "chunked", "synthetic"]
    )
    @pytest.mark.parametrize("batch_size", [1, 17, None])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("prefetch", [False, True])
    def test_shard_sources(
        self, case, case_cache, case_cache_v2, shared_backends, source_kind,
        batch_size, backend, prefetch,
    ):
        """Every shard source reproduces the golden bits at every cell of the
        (batch_size, backend, prefetch) equivalence matrix."""
        name, tensor, factors, _, config, data = case
        cache = case_cache_v2 if source_kind == "chunked" else case_cache
        source = _case_source(source_kind, name, tensor, config, cache)
        engine = StreamingExecutor(
            source,
            batch_size=batch_size,
            backend=shared_backends[backend],
            prefetch=prefetch,
        )
        for m in range(tensor.nmodes):
            assert np.array_equal(engine.mttkrp(factors, m), _expected(data, m))

    @pytest.mark.parametrize(
        "source_kind", ["memory", "mmap", "chunked", "synthetic"]
    )
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("kernel", list(KERNEL_NAMES))
    def test_shard_sources_kernel_tiers(
        self, case, case_cache, case_cache_v2, shared_backends, source_kind,
        backend, kernel,
    ):
        """The kernel axis of the golden matrix: the numpy tier (and any
        tier that falls back to it) reproduces the golden bits exactly;
        fused compiled tiers are held to the documented tolerance
        (:data:`FUSED_RTOL`/:data:`FUSED_ATOL` — their per-segment
        sequential accumulation re-associates ``np.add.reduceat``'s sum
        tree, nothing more)."""
        name, tensor, factors, _, config, data = case
        cache = case_cache_v2 if source_kind == "chunked" else case_cache
        source = _case_source(source_kind, name, tensor, config, cache)
        engine = StreamingExecutor(
            source,
            batch_size=17,
            backend=shared_backends[backend],
            kernel=kernel,
        )
        resolved = engine.kernel
        assert resolved in KERNEL_NAMES
        for m in range(tensor.nmodes):
            got = engine.mttkrp(factors, m)
            if get_kernel(resolved).bit_identical:
                assert np.array_equal(got, _expected(data, m))
            else:
                assert np.allclose(
                    got,
                    _expected(data, m),
                    rtol=FUSED_RTOL,
                    atol=FUSED_ATOL,
                )

    @pytest.mark.parametrize(
        "batch_size,backend,workers,prefetch",
        [
            (1, "serial", 1, False),
            (17, "thread", 3, True),
            (None, "serial", 1, False),
            (17, "process", 2, False),
            (None, "process", 2, True),
        ],
    )
    def test_out_of_core_decompose_bit_identical(
        self, case, case_cache, batch_size, backend, workers, prefetch
    ):
        """CP-ALS streamed from the memory-mapped cache is *bit-identical* to
        the in-memory decompose at every matrix cell — including process
        workers attached to the cache and prefetched delivery (the
        out-of-core acceptance bar) — and a fully out-of-core run
        (mmap-backed norms too) still lands on the golden fit."""
        _, tensor, _, rank, config, data = case
        als_kw = dict(
            rank=rank, n_iters=int(data["cpals_iters"]), tol=0.0, seed=42
        )
        in_memory = AmpedMTTKRP(tensor, config)
        want = cp_als(tensor, mttkrp=in_memory.mttkrp, **als_kw).final_fit
        cfg = config.replace(
            batch_size=batch_size, backend=backend, workers=workers,
            prefetch=prefetch,
        )
        with AmpedMTTKRP.from_shard_cache(case_cache, cfg) as ex:
            got = cp_als(tensor, mttkrp=ex.mttkrp, **als_kw).final_fit
            assert got == want  # bit-identical trajectory, not just close
            fully_ooc = cp_als(ex.tensor, mttkrp=ex.mttkrp, **als_kw).final_fit
            assert fully_ooc == pytest.approx(
                float(data["cpals_fit"]), abs=CPALS_FIT_TOL
            )


    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("prefetch", [False, True])
    def test_v2_compressed_decompose_bit_identical_to_v1_mmap(
        self, case, case_cache, case_cache_v2, backend, prefetch
    ):
        """CP-ALS streamed from a v2 chunked/compressed cache is
        *bit-identical* to the v1 mmap path at every (backend, prefetch)
        cell — the v2 acceptance bar: compression changes how bytes reach
        the engine, never which reductions run."""
        _, tensor, _, rank, config, data = case
        als_kw = dict(
            rank=rank, n_iters=int(data["cpals_iters"]), tol=0.0, seed=42
        )
        cfg = config.replace(backend=backend, workers=2, prefetch=prefetch)
        with AmpedMTTKRP.from_shard_cache(case_cache, cfg) as v1:
            want = cp_als(tensor, mttkrp=v1.mttkrp, **als_kw).final_fit
        with AmpedMTTKRP.from_shard_cache(case_cache_v2, cfg) as v2:
            assert type(v2.source).__name__ == "CompressedChunkSource"
            got = cp_als(tensor, mttkrp=v2.mttkrp, **als_kw).final_fit
        assert got == want  # bit-identical trajectory, not just close
        assert got == pytest.approx(float(data["cpals_fit"]), abs=CPALS_FIT_TOL)


class TestClusterGolden:
    """The scale-out acceptance bar: a 2-node loopback cluster (numpy
    tier) reproduces the golden bits and the golden CP-ALS trajectory
    exactly — node count never moves a bit, because nodes own contiguous
    disjoint batch runs and partials merge in rank order."""

    @pytest.fixture(scope="module")
    def cluster_backend(self):
        from repro.engine import ClusterBackend

        backend = ClusterBackend(nodes=2)
        yield backend
        backend.close()

    @pytest.mark.parametrize("batch_size", [17, None])
    def test_mttkrp_bits(self, case, cluster_backend, batch_size):
        _, tensor, factors, _, config, data = case
        plan = build_partition_plan(
            tensor, config.n_gpus, shards_per_gpu=config.shards_per_gpu
        )
        engine = StreamingExecutor(
            plan, batch_size=batch_size, backend=cluster_backend
        )
        for m in range(tensor.nmodes):
            assert np.array_equal(engine.mttkrp(factors, m), _expected(data, m))

    def test_cpals_bit_identical_over_mmap(
        self, case, case_cache, cluster_backend
    ):
        """CP-ALS on 2 nodes streaming the mmap cache lands on the exact
        single-host fit (bit-identical trajectory) and the golden pin."""
        _, tensor, _, rank, config, data = case
        als_kw = dict(
            rank=rank, n_iters=int(data["cpals_iters"]), tol=0.0, seed=42
        )
        in_memory = AmpedMTTKRP(tensor, config)
        want = cp_als(tensor, mttkrp=in_memory.mttkrp, **als_kw).final_fit
        source = _case_source("mmap", None, tensor, config, case_cache)
        engine = StreamingExecutor(
            source, batch_size=17, backend=cluster_backend
        )
        got = cp_als(tensor, mttkrp=engine.mttkrp, **als_kw).final_fit
        assert got == want  # bit-identical trajectory, not just close
        assert got == pytest.approx(float(data["cpals_fit"]), abs=CPALS_FIT_TOL)


class TestReferencesAndBaselines:
    @pytest.mark.parametrize("reference", [mttkrp_coo_reference, mttkrp_dense_reference])
    def test_references(self, case, reference):
        _, tensor, factors, _, _, data = case
        for m in range(tensor.nmodes):
            assert np.allclose(
                reference(tensor, factors, m),
                _expected(data, m),
                rtol=BASELINE_RTOL,
                atol=BASELINE_ATOL,
            )

    @pytest.mark.parametrize("backend_name", sorted(BACKEND_REGISTRY))
    def test_baseline_backends(self, case, backend_name):
        _, tensor, factors, rank, _, data = case
        try:
            backend = make_backend(backend_name, tensor, rank=rank)
        except UnsupportedTensorError as exc:
            pytest.skip(f"{backend_name}: {exc}")
        for m in range(tensor.nmodes):
            assert np.allclose(
                backend.mttkrp(factors, m),
                _expected(data, m),
                rtol=BASELINE_RTOL,
                atol=BASELINE_ATOL,
            )


class TestCPALSFits:
    def test_engine_fit_bit_stable(self, case):
        """CP-ALS driven by the AMPED engine reproduces the golden fit."""
        _, tensor, _, rank, config, data = case
        ex = AmpedMTTKRP(tensor, config)
        res = cp_als(
            tensor,
            rank=rank,
            mttkrp=ex.mttkrp,
            n_iters=int(data["cpals_iters"]),
            tol=0.0,
            seed=42,
        )
        assert res.final_fit == pytest.approx(
            float(data["cpals_fit"]), abs=CPALS_FIT_TOL
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("backend_name", sorted(BACKEND_REGISTRY))
    def test_baseline_fits(self, case, backend_name):
        """Every baseline backend converges to the same golden fit."""
        _, tensor, _, rank, _, data = case
        try:
            backend = make_backend(backend_name, tensor, rank=rank)
        except UnsupportedTensorError as exc:
            pytest.skip(f"{backend_name}: {exc}")
        res = cp_als(
            tensor,
            rank=rank,
            mttkrp=backend.mttkrp,
            n_iters=int(data["cpals_iters"]),
            tol=0.0,
            seed=42,
        )
        assert res.final_fit == pytest.approx(
            float(data["cpals_fit"]), abs=CPALS_FIT_TOL
        )

    @pytest.mark.slow
    def test_reference_fit(self, case):
        _, tensor, _, rank, _, data = case
        res = cp_als(
            tensor, rank=rank, n_iters=int(data["cpals_iters"]), tol=0.0, seed=42
        )
        assert res.final_fit == pytest.approx(
            float(data["cpals_fit"]), abs=CPALS_FIT_TOL
        )
