"""Golden pin of the execution-plan layer.

``plan_execution`` is deterministic arithmetic over a workload, a config,
and a host profile, so for the committed synthetic profile
(``data/host_profile.json``) the full serialized
:class:`repro.engine.plan.ExecutionPlan` — resolved axes, priced dicts,
and sha256 fingerprint — is exactly reproducible on the ``zipf3`` golden
workload. ``data/execution_plan.json`` pins it over a
(source × backend × prefetch) matrix; a diff is a deliberate resolver or
pricing change regenerated with ``make_golden.py`` and explained in
review. The round-trip tests additionally pin the serialization contract:
a committed plan reloads through ``from_dict``/``from_json`` unchanged,
and tampering is detected by the fingerprint.
"""

from __future__ import annotations

import json

import pytest

from make_golden import DATA_DIR, EXECUTION_PLAN_CASES, compute_execution_plans

from repro.engine.plan import ExecutionPlan
from repro.errors import ReproError


@pytest.fixture(scope="module")
def pinned() -> dict:
    return json.loads((DATA_DIR / "execution_plan.json").read_text())


@pytest.fixture(scope="module")
def computed() -> dict:
    return compute_execution_plans()


def test_every_case_is_pinned(pinned):
    assert set(pinned) == set(EXECUTION_PLAN_CASES)


@pytest.mark.parametrize("case", sorted(EXECUTION_PLAN_CASES))
def test_plan_matches_pin_exactly(case, pinned, computed):
    # Dict equality covers every resolved axis, both priced dicts, and —
    # because the fingerprint hashes all of it — the fingerprint itself.
    assert computed[case] == pinned[case], (
        f"{case}: resolver/pricing drifted from the committed plan "
        f"(regenerate deliberately with make_golden.py)"
    )


@pytest.mark.parametrize("case", sorted(EXECUTION_PLAN_CASES))
def test_pinned_plan_round_trips(case, pinned):
    plan = ExecutionPlan.from_dict(pinned[case])
    assert plan.to_dict() == pinned[case]
    again = ExecutionPlan.from_json(plan.to_json())
    assert again == plan
    assert again.fingerprint == pinned[case]["fingerprint"]


def test_tampered_pin_is_detected(pinned):
    case = dict(next(iter(pinned.values())))
    case["workers"] = case["workers"] + 1
    with pytest.raises(ReproError, match="fingerprint"):
        ExecutionPlan.from_dict(case)


def test_fingerprints_distinguish_cases(pinned):
    prints = [p["fingerprint"] for p in pinned.values()]
    assert len(set(prints)) == len(prints)
