"""Shared fixtures: small deterministic tensors and factor matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.coo import SparseTensorCOO
from repro.tensor.generate import lowrank_coo, random_coo, zipf_coo


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_tensor() -> SparseTensorCOO:
    """A hand-written 3-mode tensor small enough to reason about by hand."""
    indices = np.array(
        [
            [0, 0, 0],
            [0, 1, 2],
            [1, 0, 1],
            [2, 2, 0],
            [2, 2, 3],
            [3, 1, 1],
        ],
        dtype=np.int64,
    )
    values = np.array([1.0, 2.0, -0.5, 3.0, 0.25, 4.0])
    return SparseTensorCOO(indices, values, (4, 3, 4))


@pytest.fixture
def small_tensor() -> SparseTensorCOO:
    """Uniform random 3-mode tensor (a few hundred nonzeros)."""
    return random_coo((15, 12, 10), 400, seed=7)


@pytest.fixture
def skewed_tensor() -> SparseTensorCOO:
    """Zipf-skewed 3-mode tensor (exercises imbalance paths)."""
    return zipf_coo((40, 25, 30), 1500, exponents=(1.2, 0.8, 1.0), seed=11)


@pytest.fixture
def four_mode_tensor() -> SparseTensorCOO:
    return random_coo((8, 7, 6, 5), 300, seed=3)


@pytest.fixture
def five_mode_tensor() -> SparseTensorCOO:
    return zipf_coo((12, 10, 8, 4, 4), 500, exponents=1.0, seed=5)


@pytest.fixture
def fitted_tensor() -> SparseTensorCOO:
    """Low-rank-plus-noise tensor that CP-ALS can fit well."""
    return lowrank_coo((20, 16, 12), 1200, rank=4, noise=0.01, seed=21)


@pytest.fixture
def make_factors():
    """Factory fixture: deterministic factors for any shape/rank."""

    def make(shape, rank: int = 6, seed: int = 99) -> list[np.ndarray]:
        r = np.random.default_rng(seed)
        return [r.random((s, rank)) for s in shape]

    return make
