"""Tests for the kernel cost model."""

import pytest

from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import EPYC_9654_DUAL, RTX6000_ADA


@pytest.fixture
def cost():
    return KernelCostModel()


class TestElementSizes:
    def test_coo_element_bytes(self, cost):
        assert cost.coo_element_bytes(3) == 16  # 3 x uint32 + f32
        assert cost.coo_element_bytes(5) == 24

    def test_factor_bytes(self, cost):
        assert cost.factor_bytes(1000, 32) == 1000 * 32 * 4


class TestHitEstimation:
    def test_uniform_hit_small_working_set(self, cost):
        assert cost.uniform_factor_hit(cost.effective_cache_bytes // 2) == 1.0

    def test_uniform_hit_large_working_set(self, cost):
        hit = cost.uniform_factor_hit(cost.effective_cache_bytes * 10)
        assert hit == pytest.approx(0.1)

    def test_floor_applies(self, cost):
        hit = cost.uniform_factor_hit(cost.effective_cache_bytes * 1000)
        assert hit == cost.uniform_factor_hit_floor


class TestMttkrpTime:
    def test_zero_nnz_is_launch_only(self, cost):
        assert cost.mttkrp_time(RTX6000_ADA, 0, 32, 3) == cost.launch_overhead

    def test_monotone_in_nnz(self, cost):
        t1 = cost.mttkrp_time(RTX6000_ADA, 10**6, 32, 3)
        t2 = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3)
        assert t2 > t1

    def test_sorted_faster_than_unsorted(self, cost):
        kw = dict(factor_hit=0.5)
        sorted_t = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3, sorted_output=True, **kw)
        unsorted_t = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3, sorted_output=False, **kw)
        assert sorted_t < unsorted_t

    def test_higher_hit_is_faster(self, cost):
        slow = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3, factor_hit=0.1)
        fast = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3, factor_hit=0.9)
        assert fast < slow

    def test_reuse_discount_is_faster(self, cost):
        base = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3, factor_hit=0.2)
        reused = cost.mttkrp_time(
            RTX6000_ADA, 10**7, 32, 3, factor_hit=0.2, factor_read_discount=0.5
        )
        assert reused < base

    def test_contention_slows_unsorted(self, cost):
        base = cost.mttkrp_time(
            RTX6000_ADA, 10**7, 32, 3, factor_hit=0.5, sorted_output=False
        )
        contended = cost.mttkrp_time(
            RTX6000_ADA,
            10**7,
            32,
            3,
            factor_hit=0.5,
            sorted_output=False,
            atomic_contention=True,
            avg_nnz_per_row=1e6,
        )
        assert contended > base * 2

    def test_contention_ignored_when_sorted(self, cost):
        a = cost.mttkrp_time(RTX6000_ADA, 10**7, 32, 3, factor_hit=0.5)
        b = cost.mttkrp_time(
            RTX6000_ADA,
            10**7,
            32,
            3,
            factor_hit=0.5,
            atomic_contention=True,
            avg_nnz_per_row=1e6,
        )
        assert a == b

    def test_efficiency_scales_time(self, cost):
        full = cost.mttkrp_time(RTX6000_ADA, 10**8, 32, 3, factor_hit=0.5)
        half = cost.mttkrp_time(
            RTX6000_ADA, 10**8, 32, 3, factor_hit=0.5, bandwidth_efficiency=0.5
        )
        assert half == pytest.approx(2 * full - cost.launch_overhead, rel=1e-6)

    def test_bad_efficiency(self, cost):
        with pytest.raises(ValueError):
            cost.mttkrp_time(RTX6000_ADA, 10, 32, 3, bandwidth_efficiency=0.0)

    def test_hit_derived_from_working_set_when_none(self, cost):
        small = cost.mttkrp_time(
            RTX6000_ADA, 10**7, 32, 3, input_factor_bytes=1 * 2**20
        )
        large = cost.mttkrp_time(
            RTX6000_ADA, 10**7, 32, 3, input_factor_bytes=10 * 2**30
        )
        assert small < large


class TestAuxKernels:
    def test_remap_time_scales(self, cost):
        t1 = cost.remap_time(RTX6000_ADA, 10**6, 16)
        t2 = cost.remap_time(RTX6000_ADA, 10**7, 16)
        assert t2 > t1
        assert cost.remap_time(RTX6000_ADA, 0, 16) == 0.0

    def test_host_merge_scales_with_parts(self, cost):
        t2 = cost.host_merge_time(EPYC_9654_DUAL, 10**6, 32, 2)
        t4 = cost.host_merge_time(EPYC_9654_DUAL, 10**6, 32, 4)
        assert t4 > t2

    def test_host_sort_passes(self, cost):
        t = cost.host_sort_time(EPYC_9654_DUAL, 10**6, 16)
        scan = cost.host_scan_time(EPYC_9654_DUAL, 10**6, 16)
        assert t == pytest.approx(cost.host_sort_passes * scan)

    def test_with_overrides(self, cost):
        c2 = cost.with_overrides(launch_overhead=1e-3)
        assert c2.launch_overhead == 1e-3
        assert cost.launch_overhead != 1e-3  # original untouched
