"""Tests for device specs and the memory tracker."""

import pytest

from repro.errors import DeviceMemoryError
from repro.simgpu.device import GPUSpec, HostSpec
from repro.simgpu.memory import MemoryTracker
from repro.simgpu.presets import EPYC_9654_DUAL, RTX6000_ADA


class TestSpecs:
    def test_paper_gpu_figures(self):
        # §5.1: 142 SMs, 48 GB, RTX 6000 Ada
        assert RTX6000_ADA.n_sms == 142
        assert RTX6000_ADA.mem_capacity == 48 * 2**30
        assert RTX6000_ADA.flops == pytest.approx(91.1e12)

    def test_paper_host_figures(self):
        # §5.1: 2 x 96 cores, 1.5 TB
        assert EPYC_9654_DUAL.n_cores == 192
        assert EPYC_9654_DUAL.mem_capacity == 1536 * 2**30

    def test_invalid_gpu_spec(self):
        with pytest.raises(ValueError):
            GPUSpec("x", 0, 1.0, 1, 1.0)
        with pytest.raises(ValueError):
            GPUSpec("x", 1, 1.0, 1, 1.0, atomic_efficiency=0.0)

    def test_invalid_host_spec(self):
        with pytest.raises(ValueError):
            HostSpec("x", 0, 1.0, 1, 1.0)


class TestMemoryTracker:
    def test_allocate_free_cycle(self):
        mem = MemoryTracker(1000)
        mem.allocate("a", 400)
        assert mem.used == 400
        assert mem.available == 600
        assert mem.free("a") == 400
        assert mem.used == 0

    def test_oom_raises_with_details(self):
        mem = MemoryTracker(1000, owner="gpu0")
        mem.allocate("a", 800)
        with pytest.raises(DeviceMemoryError) as exc:
            mem.allocate("b", 300)
        assert exc.value.requested == 300
        assert exc.value.available == 200
        assert "gpu0" in str(exc.value)

    def test_oom_leaves_state_unchanged(self):
        mem = MemoryTracker(1000)
        mem.allocate("a", 800)
        with pytest.raises(DeviceMemoryError):
            mem.allocate("b", 300)
        assert mem.used == 800
        assert not mem.holds("b")

    def test_duplicate_name_rejected(self):
        mem = MemoryTracker(1000)
        mem.allocate("a", 10)
        with pytest.raises(DeviceMemoryError, match="already exists"):
            mem.allocate("a", 10)

    def test_free_unknown_rejected(self):
        mem = MemoryTracker(1000)
        with pytest.raises(DeviceMemoryError, match="unknown"):
            mem.free("ghost")

    def test_resize(self):
        mem = MemoryTracker(1000)
        mem.allocate("a", 100)
        mem.resize("a", 500)
        assert mem.used == 500

    def test_resize_failure_restores_old(self):
        mem = MemoryTracker(1000)
        mem.allocate("a", 100)
        with pytest.raises(DeviceMemoryError):
            mem.resize("a", 2000)
        assert mem.used == 100

    def test_peak_tracking(self):
        mem = MemoryTracker(1000)
        mem.allocate("a", 700)
        mem.free("a")
        mem.allocate("b", 100)
        assert mem.peak == 700

    def test_exact_fit_allowed(self):
        mem = MemoryTracker(100)
        mem.allocate("a", 100)
        assert mem.available == 0
