"""Tests for the multi-GPU platform facade."""

import pytest

from repro.errors import SimulationError
from repro.simgpu.platform import MultiGPUPlatform
from repro.simgpu.presets import paper_platform
from repro.simgpu.trace import Category


@pytest.fixture
def plat():
    return paper_platform(4)


class TestPlatform:
    def test_paper_platform_shape(self, plat):
        assert plat.n_gpus == 4
        assert len(plat.gpus) == 4
        assert plat.host_link.bandwidth == 64e9  # §5.1: 64 GB/s PCIe

    def test_h2d_uses_per_gpu_links_concurrently(self, plat):
        """Four GPUs streaming simultaneously finish at single-GPU time."""
        ends = [plat.h2d(g, 64e9, 0.0) for g in range(4)]
        assert max(ends) == pytest.approx(1.0, rel=1e-3)

    def test_same_gpu_transfers_serialize(self, plat):
        e1 = plat.h2d(0, 64e9, 0.0)
        e2 = plat.h2d(0, 64e9, 0.0)
        assert e2 == pytest.approx(2 * e1, rel=1e-3)

    def test_compute_and_dma_overlap(self, plat):
        """Compute on one engine does not block the DMA engine."""
        c = plat.compute(0, 1.0, 0.0)
        d = plat.h2d(0, 64e9, 0.0)
        assert c == pytest.approx(1.0)
        assert d == pytest.approx(1.0, rel=1e-3)  # ran concurrently

    def test_p2p_records_sender_span(self, plat):
        plat.p2p(1, 2, 6e9, 0.0)
        spans = [s for s in plat.timeline.spans if s.category == Category.P2P]
        assert len(spans) == 1
        assert spans[0].device == 1

    def test_p2p_same_device_rejected(self, plat):
        with pytest.raises(SimulationError):
            plat.p2p(1, 1, 100, 0.0)

    def test_host_compute(self, plat):
        end = plat.host_compute(2.0, 1.0)
        assert end == 3.0
        assert plat.timeline.busy_time(category=Category.HOST) == 2.0

    def test_barrier(self, plat):
        assert plat.barrier([1.0, 3.0, 2.0]) == 3.0
        with pytest.raises(SimulationError):
            plat.barrier([])

    def test_reset_clears_time_not_memory(self, plat):
        plat.compute(0, 1.0, 0.0)
        plat.gpu(0).memory.allocate("x", 100)
        plat.reset()
        assert plat.timeline.makespan == 0.0
        assert plat.gpu(0).compute.free_at == 0.0
        assert plat.gpu(0).memory.holds("x")

    def test_gpu_out_of_range(self, plat):
        with pytest.raises(SimulationError):
            plat.gpu(7)

    def test_zero_gpus_rejected(self):
        from repro.simgpu.presets import EPYC_9654_DUAL, PCIE_GEN4_X16, P2P_PCIE, RTX6000_ADA

        with pytest.raises(SimulationError):
            MultiGPUPlatform(
                gpu_spec=RTX6000_ADA,
                n_gpus=0,
                host=EPYC_9654_DUAL,
                host_link=PCIE_GEN4_X16,
                p2p_link=P2P_PCIE,
            )
