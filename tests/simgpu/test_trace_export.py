"""Tests for the Chrome trace exporter."""

import json

from repro.simgpu.trace import Category, Timeline
from repro.simgpu.trace_export import timeline_to_trace_events, write_chrome_trace


def sample_timeline() -> Timeline:
    tl = Timeline()
    tl.add(0, Category.H2D, 0.0, 0.5, "shard0")
    tl.add(0, Category.COMPUTE, 0.5, 1.5, "grid0")
    tl.add(1, Category.P2P, 1.5, 1.8, "allgather")
    tl.add(-1, Category.HOST, 0.0, 0.2, "merge")
    return tl


class TestTraceEvents:
    def test_one_complete_event_per_span(self):
        tl = sample_timeline()
        events = timeline_to_trace_events(tl)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tl.spans)

    def test_timestamps_scaled_to_microseconds(self):
        events = timeline_to_trace_events(sample_timeline())
        grid = next(e for e in events if e.get("name") == "grid0")
        assert grid["ts"] == 0.5e6
        assert grid["dur"] == 1.0e6

    def test_thread_metadata_emitted_once_per_row(self):
        tl = sample_timeline()
        tl.add(0, Category.COMPUTE, 2.0, 3.0, "grid1")  # same row as grid0
        events = timeline_to_trace_events(tl)
        metas = [e for e in events if e["ph"] == "M"]
        names = [m["args"]["name"] for m in metas]
        assert len(names) == len(set(names))
        assert "gpu0.compute" in names
        assert "host.host_compute" in names

    def test_host_uses_sentinel_pid(self):
        events = timeline_to_trace_events(sample_timeline())
        merge = next(e for e in events if e.get("name") == "merge")
        assert merge["pid"] == 9999

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(sample_timeline(), tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_simulation_timeline_exports(self, tmp_path):
        """End-to-end: a real AMPED simulation timeline round-trips."""
        from repro.bench.harness import model_workloads, run_amped_model
        from repro.core.config import AmpedConfig

        cfg = AmpedConfig(shards_per_gpu=4)
        wl = model_workloads(cfg)["amazon"]
        res = run_amped_model(wl, cfg)
        path = write_chrome_trace(res.timeline, tmp_path / "amazon.json")
        payload = json.loads(path.read_text())
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(res.timeline.spans)
