"""Tests for the serial-resource engine and the timeline traces."""

import pytest

from repro.errors import SimulationError
from repro.simgpu.engine import SerialResource
from repro.simgpu.trace import Category, Span, Timeline


class TestSerialResource:
    def test_fifo_serialization(self):
        r = SerialResource("x")
        s1, e1 = r.acquire(0.0, 2.0)
        s2, e2 = r.acquire(0.0, 3.0)
        assert (s1, e1) == (0.0, 2.0)
        assert (s2, e2) == (2.0, 5.0)  # queued behind op 1

    def test_idle_gap_respected(self):
        r = SerialResource("x")
        r.acquire(0.0, 1.0)
        s, e = r.acquire(5.0, 1.0)  # ready later than free
        assert s == 5.0 and e == 6.0

    def test_busy_accounting(self):
        r = SerialResource("x")
        r.acquire(0.0, 2.0)
        r.acquire(10.0, 3.0)
        assert r.busy_time == pytest.approx(5.0)
        assert r.n_ops == 2

    def test_reset(self):
        r = SerialResource("x")
        r.acquire(0.0, 2.0)
        r.reset()
        assert r.free_at == 0.0 and r.busy_time == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            SerialResource("x").acquire(0.0, -1.0)


class TestTimeline:
    def test_makespan(self):
        tl = Timeline()
        tl.add(0, Category.COMPUTE, 0.0, 2.0)
        tl.add(1, Category.H2D, 1.0, 5.0)
        assert tl.makespan == 5.0

    def test_empty_makespan(self):
        assert Timeline().makespan == 0.0

    def test_busy_time_filters(self):
        tl = Timeline()
        tl.add(0, Category.COMPUTE, 0.0, 2.0)
        tl.add(0, Category.H2D, 0.0, 1.0)
        tl.add(1, Category.COMPUTE, 0.0, 4.0)
        assert tl.busy_time(category=Category.COMPUTE) == pytest.approx(6.0)
        assert tl.device_busy(0, Category.COMPUTE) == pytest.approx(2.0)

    def test_breakdown_sums_to_one(self):
        tl = Timeline()
        tl.add(0, Category.COMPUTE, 0.0, 2.0)
        tl.add(0, Category.H2D, 0.0, 1.0)
        tl.add(0, Category.P2P, 2.0, 3.0)
        bd = tl.breakdown()
        assert sum(bd.values()) == pytest.approx(1.0)
        assert bd["computation"] == pytest.approx(0.5)

    def test_breakdown_groups_host_with_host_gpu(self):
        tl = Timeline()
        tl.add(-1, Category.HOST, 0.0, 1.0)
        tl.add(0, Category.D2H, 0.0, 1.0)
        bd = tl.breakdown()
        assert bd["host_gpu_comm"] == pytest.approx(1.0)

    def test_empty_breakdown_zeroes(self):
        bd = Timeline().breakdown()
        assert all(v == 0.0 for v in bd.values())

    def test_invalid_span(self):
        with pytest.raises(SimulationError):
            Span(0, Category.COMPUTE, 2.0, 1.0)
