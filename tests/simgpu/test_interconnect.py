"""Tests for links and the ring topology."""

import pytest

from repro.simgpu.interconnect import Link, RingTopology, transfer_time


class TestLink:
    def test_transfer_time_formula(self):
        link = Link("x", bandwidth=1e9, latency=1e-6)
        assert link.time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_pays_latency(self):
        link = Link("x", bandwidth=1e9, latency=5e-6)
        assert link.time(0) == pytest.approx(5e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Link("x", 1e9).time(-1)

    def test_invalid_link(self):
        with pytest.raises(ValueError):
            Link("x", 0)
        with pytest.raises(ValueError):
            Link("x", 1e9, latency=-1)

    def test_transfer_time_helper(self):
        assert transfer_time(2e9, 1e9) == pytest.approx(2.0)


class TestRing:
    def test_neighbors(self):
        ring = RingTopology(4)
        assert ring.next_of(3) == 0
        assert ring.prev_of(0) == 3

    def test_send_receive_consistency(self):
        """What rank g-1 sends at step z is what rank g receives (Alg 3)."""
        ring = RingTopology(5)
        for step in range(4):
            for g in range(5):
                sender = ring.prev_of(g)
                assert ring.send_chunk(sender, step) == ring.recv_chunk(g, step)

    def test_all_chunks_received_once(self):
        """After n-1 steps every rank received every other chunk exactly once."""
        n = 6
        ring = RingTopology(n)
        for g in range(n):
            received = [ring.recv_chunk(g, z) for z in range(n - 1)]
            assert sorted(received + [g]) == list(range(n))

    def test_forwarding_validity(self):
        """A rank only sends chunks it already holds."""
        n = 4
        ring = RingTopology(n)
        holdings = {g: {g} for g in range(n)}
        for step in range(n - 1):
            for g in range(n):
                assert ring.send_chunk(g, step) in holdings[g]
            for g in range(n):
                holdings[g].add(ring.recv_chunk(g, step))

    def test_invalid_ring(self):
        with pytest.raises(ValueError):
            RingTopology(0)
