"""Tests for the util helpers."""

import logging

import numpy as np
import pytest

from repro.util.humanize import format_bytes, format_count, format_seconds, format_shape
from repro.util.logging import get_logger
from repro.util.rng import (
    resolve_rng,
    sample_from_weights,
    spawn_rngs,
    zipf_weights,
)
from repro.util.timer import Timer, WallClock


class TestRng:
    def test_resolve_from_int(self):
        a = resolve_rng(5).integers(0, 100, 10)
        b = resolve_rng(5).integers(0, 100, 10)
        assert np.array_equal(a, b)

    def test_resolve_passthrough(self):
        g = np.random.default_rng(0)
        assert resolve_rng(g) is g

    def test_resolve_none(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_resolve_rejects_junk(self):
        with pytest.raises(TypeError):
            resolve_rng("seedy")

    def test_spawn_independent_streams(self):
        children = spawn_rngs(7, 3)
        draws = [c.random(5) for c in children]
        assert not np.allclose(draws[0], draws[1])
        again = spawn_rngs(7, 3)
        assert np.allclose(draws[0], again[0].random(5))

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) <= 0).all()

    def test_zipf_zero_exponent_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_zipf_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)

    def test_sample_from_weights_respects_support(self):
        rng = np.random.default_rng(0)
        w = np.array([0.0, 1.0, 0.0])
        s = sample_from_weights(rng, w, 100)
        assert (s == 1).all()

    def test_sample_distribution_roughly_matches(self):
        rng = np.random.default_rng(1)
        w = zipf_weights(5, 1.0)
        s = sample_from_weights(rng, w, 50_000)
        freq = np.bincount(s, minlength=5) / 50_000
        assert np.allclose(freq, w, atol=0.01)

    def test_sample_zero_size(self):
        s = sample_from_weights(np.random.default_rng(0), zipf_weights(5, 1), 0)
        assert s.size == 0


class TestTimer:
    def test_accumulates(self):
        class FakeClock(WallClock):
            def __init__(self):
                self.t = 0.0

            def now(self):
                self.t += 1.0
                return self.t

        t = Timer(clock=FakeClock())
        with t:
            pass
        with t:
            pass
        assert t.elapsed == pytest.approx(2.0)
        t.reset()
        assert t.elapsed == 0.0

    def test_exit_without_enter(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)

    def test_reenter_while_started_raises(self):
        # Regression: __enter__ used to overwrite the prior start silently,
        # dropping the already-elapsed time on the floor.
        t = Timer()
        with t:
            with pytest.raises(RuntimeError, match="already started"):
                t.__enter__()
        assert t.elapsed >= 0.0  # the outer exit still accounted cleanly

    def test_usable_after_reenter_error(self):
        t = Timer()
        t.__enter__()
        with pytest.raises(RuntimeError):
            t.__enter__()
        t.__exit__(None, None, None)
        with t:  # a full exit resets the guard; re-entry accumulates again
            pass


class TestHumanize:
    def test_bytes(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(1536) == "1.5KB"
        assert format_bytes(48 * 2**30) == "48.0GB"
        assert format_bytes(-1024) == "-1.0KB"

    def test_count(self):
        assert format_count(999) == "999"
        assert format_count(1_700_000_000) == "1.7B"
        assert format_count(239_200) == "239.2K"

    def test_seconds(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(3.0) == "3.00s"
        assert format_seconds(300) == "5.0min"

    def test_shape_table3_style(self):
        assert format_shape((4_800_000, 1_800_000)) == "4.8M x 1.8M"


class TestLogging:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.comm").name == "repro.comm"

    def test_null_handler_present(self):
        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )
