"""Tests for preprocessing time models and timed plan construction."""

import pytest

from repro.core.config import AmpedConfig
from repro.core.preprocess import (
    PREPROCESS_PIPELINES,
    build_plan_timed,
    preprocessing_time,
)
from repro.datasets.profiles import AMAZON, TWITCH
from repro.datasets.workload import paper_workload
from repro.errors import ReproError
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import EPYC_9654_DUAL


@pytest.fixture
def amazon_wl():
    return paper_workload(AMAZON, AmpedConfig(), KernelCostModel())


@pytest.fixture
def twitch_wl():
    return paper_workload(TWITCH, AmpedConfig(), KernelCostModel())


class TestPreprocessingTime:
    def test_all_pipelines_positive(self, amazon_wl):
        cost = KernelCostModel()
        for method in PREPROCESS_PIPELINES:
            t = preprocessing_time(method, amazon_wl, cost, EPYC_9654_DUAL)
            assert t > 0

    def test_amped_costs_more_than_blco(self, amazon_wl):
        """Figure 10's shape: per-mode sorted copies beat one linearized sort."""
        cost = KernelCostModel()
        t_amped = preprocessing_time("amped", amazon_wl, cost, EPYC_9654_DUAL)
        t_blco = preprocessing_time("blco", amazon_wl, cost, EPYC_9654_DUAL)
        assert t_amped > t_blco

    def test_more_modes_cost_more_for_amped(self, amazon_wl, twitch_wl):
        """5-mode Twitch needs 5 sorted copies vs 3 for Amazon (per nnz)."""
        cost = KernelCostModel()
        per_nnz_amazon = (
            preprocessing_time("amped", amazon_wl, cost, EPYC_9654_DUAL)
            / amazon_wl.nnz
        )
        per_nnz_twitch = (
            preprocessing_time("amped", twitch_wl, cost, EPYC_9654_DUAL)
            / twitch_wl.nnz
        )
        assert per_nnz_twitch > per_nnz_amazon

    def test_unknown_method(self, amazon_wl):
        with pytest.raises(ReproError):
            preprocessing_time("quantum", amazon_wl, KernelCostModel(), EPYC_9654_DUAL)


class TestBuildPlanTimed:
    def test_returns_plan_and_time(self, skewed_tensor):
        plan, seconds = build_plan_timed(skewed_tensor, AmpedConfig(n_gpus=2))
        assert seconds >= 0
        plan.validate()
        assert plan.n_gpus == 2
