"""Tests for the heterogeneous-platform extension (paper §6 future work)."""

import numpy as np
import pytest

from repro.core.config import AmpedConfig
from repro.core.hetero import device_speeds, hetero_workload, simulate_hetero
from repro.core.simulate import simulate_amped
from repro.datasets.profiles import AMAZON
from repro.datasets.workload import paper_workload
from repro.errors import SimulationError
from repro.simgpu.hetero import CPU_AS_DEVICE, HeteroPlatform
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import (
    A100_40GB,
    EPYC_9654_DUAL,
    PCIE_GEN4_X16,
    P2P_PCIE,
    RTX6000_ADA,
    paper_platform,
)


@pytest.fixture(scope="module")
def cost():
    return KernelCostModel()


@pytest.fixture(scope="module")
def amazon_wl(cost):
    return paper_workload(AMAZON, AmpedConfig(), cost)


def mixed_platform(specs):
    return HeteroPlatform(
        device_specs=specs,
        host=EPYC_9654_DUAL,
        host_links=[PCIE_GEN4_X16],
        p2p_link=P2P_PCIE,
    )


class TestDeviceSpeeds:
    def test_identical_devices_identical_speeds(self, amazon_wl, cost):
        plat = mixed_platform([RTX6000_ADA] * 4)
        s = device_speeds(plat, cost, amazon_wl, rank=32)
        assert np.allclose(s, s[0])

    def test_faster_memory_means_faster_device_when_kernel_bound(
        self, amazon_wl, cost
    ):
        # A100's HBM beats Ada's GDDR6 for a memory-bound kernel, visible
        # once the host link is fast enough not to mask it.
        from repro.simgpu.interconnect import Link

        fat_link = Link("fat", 500e9, 5e-6)
        plat = HeteroPlatform(
            device_specs=[RTX6000_ADA, A100_40GB],
            host=EPYC_9654_DUAL,
            host_links=[fat_link],
            p2p_link=P2P_PCIE,
        )
        s = device_speeds(plat, cost, amazon_wl, rank=32)
        assert s[1] > s[0]

    def test_link_bound_devices_score_equal(self, amazon_wl, cost):
        # Behind identical 64 GB/s PCIe links, Ada and A100 stream-bound
        # throughputs coincide — assigning the A100 extra work would only
        # lengthen its transfers.
        plat = mixed_platform([RTX6000_ADA, A100_40GB])
        s = device_speeds(plat, cost, amazon_wl, rank=32)
        assert s[1] == pytest.approx(s[0], rel=0.05)

    def test_cpu_as_device_is_slowest(self, amazon_wl, cost):
        cpu = CPU_AS_DEVICE(EPYC_9654_DUAL)
        plat = mixed_platform([RTX6000_ADA, cpu])
        s = device_speeds(plat, cost, amazon_wl, rank=32)
        assert s[1] < s[0]


class TestHeteroWorkload:
    def test_rebalance_preserves_totals(self, amazon_wl, cost):
        plat = mixed_platform([RTX6000_ADA, A100_40GB, RTX6000_ADA, A100_40GB])
        speeds = device_speeds(plat, cost, amazon_wl, rank=32)
        wl = hetero_workload(amazon_wl, speeds)
        for m, mw in enumerate(wl.modes):
            assert mw.nnz == amazon_wl.nnz
            assert mw.rows_per_gpu.sum() == amazon_wl.shape[m]

    def test_faster_devices_receive_more_nnz(self, amazon_wl, cost):
        cpu = CPU_AS_DEVICE(EPYC_9654_DUAL)
        plat = mixed_platform([RTX6000_ADA, cpu])
        speeds = device_speeds(plat, cost, amazon_wl, rank=32)
        wl = hetero_workload(amazon_wl, speeds)
        gpu_nnz = wl.modes[0].gpu_nnz()
        assert gpu_nnz[0] > gpu_nnz[1]


class TestSimulateHetero:
    def test_homogeneous_matches_standard_simulation(self, amazon_wl, cost):
        """With identical devices, hetero == the standard AMPED simulation."""
        cfg = AmpedConfig()
        plat_h = mixed_platform([RTX6000_ADA] * 4)
        speeds = device_speeds(plat_h, cost, amazon_wl, rank=32)
        wl_h = hetero_workload(amazon_wl, speeds)
        res_h = simulate_hetero(plat_h, cost, wl_h, cfg)
        res_std = simulate_amped(paper_platform(4), cost, amazon_wl, cfg)
        assert res_h.ok and res_std.ok
        assert res_h.total_time == pytest.approx(res_std.total_time, rel=0.02)

    def test_adding_a_cpu_device_is_roughly_neutral(self, amazon_wl, cost):
        """3 GPUs + 1 CPU: weighted balancing offloads some compute to the
        CPU, but the 4-way ring all-gather grows — net effect must stay
        within a few percent of the 3-GPU platform (no catastrophic loss),
        and per-device compute must remain balanced."""
        cfg3 = AmpedConfig(n_gpus=3)
        wl3 = paper_workload(AMAZON, cfg3, cost)
        gpus3 = simulate_amped(paper_platform(3), cost, wl3, cfg3)

        cpu = CPU_AS_DEVICE(EPYC_9654_DUAL)
        plat = mixed_platform([RTX6000_ADA] * 3 + [cpu])
        cfg4 = AmpedConfig(n_gpus=4)
        wl4 = paper_workload(AMAZON, cfg4, cost)
        speeds = device_speeds(plat, cost, wl4, rank=32)
        mixed = simulate_hetero(plat, cost, hetero_workload(wl4, speeds), cfg4)
        assert mixed.ok
        assert mixed.total_time < gpus3.total_time * 1.10
        # the CPU device receives a real but minority share of the nonzeros
        shares = hetero_workload(wl4, speeds).modes[0].gpu_nnz() / wl4.nnz
        assert 0.0 < shares[3] < min(shares[:3])

    def test_weighted_beats_unweighted_on_mixed_devices(self, amazon_wl, cost):
        """Unweighted LPT on a mixed platform strands work on the slow
        device; the weighted assignment must be faster."""
        cpu = CPU_AS_DEVICE(EPYC_9654_DUAL)
        specs = [RTX6000_ADA] * 3 + [cpu]
        cfg = AmpedConfig(n_gpus=4)
        wl = paper_workload(AMAZON, cfg, cost)

        unweighted = simulate_hetero(mixed_platform(specs), cost, wl, cfg)
        speeds = device_speeds(mixed_platform(specs), cost, wl, rank=32)
        weighted = simulate_hetero(
            mixed_platform(specs), cost, hetero_workload(wl, speeds), cfg
        )
        assert weighted.ok and unweighted.ok
        assert weighted.total_time < unweighted.total_time

    def test_device_count_mismatch(self, amazon_wl, cost):
        plat = mixed_platform([RTX6000_ADA] * 2)
        with pytest.raises(SimulationError):
            simulate_hetero(plat, cost, amazon_wl, AmpedConfig())


class TestHeteroPlatform:
    def test_shared_link_broadcasts(self):
        plat = mixed_platform([RTX6000_ADA, A100_40GB])
        assert len(plat.host_links) == 2

    def test_per_device_links(self):
        from repro.simgpu.interconnect import Link

        slow = Link("slow", 8e9)
        plat = HeteroPlatform(
            device_specs=[RTX6000_ADA, A100_40GB],
            host=EPYC_9654_DUAL,
            host_links=[PCIE_GEN4_X16, slow],
            p2p_link=P2P_PCIE,
        )
        fast_end = plat.h2d(0, 8e9, 0.0)
        slow_end = plat.h2d(1, 8e9, 0.0)
        assert slow_end > fast_end

    def test_empty_platform_rejected(self):
        with pytest.raises(SimulationError):
            HeteroPlatform(
                device_specs=[],
                host=EPYC_9654_DUAL,
                host_links=[PCIE_GEN4_X16],
                p2p_link=P2P_PCIE,
            )

    def test_link_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            HeteroPlatform(
                device_specs=[RTX6000_ADA] * 3,
                host=EPYC_9654_DUAL,
                host_links=[PCIE_GEN4_X16, PCIE_GEN4_X16],
                p2p_link=P2P_PCIE,
            )
