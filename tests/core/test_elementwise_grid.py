"""Tests for the threadblock EC and shard/grid execution."""

import numpy as np
import pytest

from repro.core.elementwise import threadblock_ec
from repro.core.grid import execute_shard, execute_source_shard
from repro.engine.source import MmapNpzSource
from repro.errors import ReproError
from repro.partition.plan import build_partition_plan
from repro.partition.sharding import shard_mode
from repro.tensor.io import write_shard_cache
from repro.tensor.reference import mttkrp_coo_reference


class TestThreadblockEC:
    @pytest.mark.parametrize("p", [1, 3, 32, 1000])
    def test_batch_size_independence(self, small_tensor, make_factors, p):
        """Algorithm 2's result must not depend on P (threadblock columns)."""
        factors = make_factors(small_tensor.shape)
        out = np.zeros((small_tensor.shape[0], 6))
        threadblock_ec(
            small_tensor.indices,
            small_tensor.values,
            factors,
            0,
            out,
            threadblock_cols=p,
        )
        ref = mttkrp_coo_reference(small_tensor, factors, 0)
        assert np.allclose(out, ref)

    def test_invalid_cols(self, small_tensor, make_factors):
        with pytest.raises(ReproError):
            threadblock_ec(
                small_tensor.indices,
                small_tensor.values,
                make_factors(small_tensor.shape),
                0,
                np.zeros((small_tensor.shape[0], 6)),
                threadblock_cols=0,
            )


class TestExecuteShard:
    @pytest.mark.parametrize("n_sms", [1, 2, 7, 142])
    def test_sm_count_independence(self, skewed_tensor, make_factors, n_sms):
        """§4.2: output must not depend on the SM/threadblock schedule."""
        factors = make_factors(skewed_tensor.shape)
        part = shard_mode(skewed_tensor, 1, 4)
        out = np.zeros((skewed_tensor.shape[1], 6))
        for shard in part.shards:
            execute_shard(part, shard, factors, out, n_sms=n_sms)
        ref = mttkrp_coo_reference(skewed_tensor, factors, 1)
        assert np.allclose(out, ref)

    def test_single_shard_partial_result(self, small_tensor, make_factors):
        """One shard only contributes rows in its output-index range."""
        factors = make_factors(small_tensor.shape)
        part = shard_mode(small_tensor, 0, 3)
        shard = part.shards[1]
        out = np.zeros((small_tensor.shape[0], 6))
        execute_shard(part, shard, factors, out)
        lo, hi = shard.index_range
        assert np.all(out[:lo] == 0)
        assert np.all(out[hi:] == 0)

    def test_shards_compose_to_full_result(self, small_tensor, make_factors):
        factors = make_factors(small_tensor.shape)
        for mode in range(3):
            part = shard_mode(small_tensor, mode, 5)
            out = np.zeros((small_tensor.shape[mode], 6))
            for shard in part.shards:
                execute_shard(part, shard, factors, out, n_sms=3)
            ref = mttkrp_coo_reference(small_tensor, factors, mode)
            assert np.allclose(out, ref)


class TestExecuteSourceShard:
    @pytest.mark.parametrize("batch_size", [None, 16])
    def test_mmap_source_grids_compose_bitwise(
        self, small_tensor, make_factors, tmp_path, batch_size
    ):
        """Grid execution straight off a memory-mapped source matches the
        resident path bit for bit, shard by shard."""
        factors = make_factors(small_tensor.shape)
        cache = write_shard_cache(small_tensor, tmp_path / "t.npz")
        source = MmapNpzSource(cache, n_gpus=2, shards_per_gpu=2)
        plan = build_partition_plan(small_tensor, 2, shards_per_gpu=2)
        for mode in range(small_tensor.nmodes):
            part = plan.modes[mode]
            want = np.zeros((small_tensor.shape[mode], 6))
            got = np.zeros_like(want)
            for shard in part.shards:
                execute_shard(
                    part, shard, factors, want, batch_size=batch_size
                )
                execute_source_shard(
                    source, mode, shard.shard_id, factors, got,
                    batch_size=batch_size,
                )
            assert np.array_equal(got, want)

    def test_shard_id_range_checked(self, small_tensor, make_factors, tmp_path):
        cache = write_shard_cache(small_tensor, tmp_path / "t.npz")
        source = MmapNpzSource(cache, n_gpus=2, shards_per_gpu=2)
        with pytest.raises(ReproError, match="out of range"):
            execute_source_shard(
                source, 0, 99, make_factors(small_tensor.shape),
                np.zeros((small_tensor.shape[0], 6)),
            )
