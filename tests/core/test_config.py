"""Tests for AmpedConfig."""

import pytest

from repro.core.config import AmpedConfig
from repro.errors import ReproError


class TestAmpedConfig:
    def test_paper_defaults(self):
        cfg = AmpedConfig()
        # §5.1.5: 4 GPUs, R = 32, theta (P) = 32
        assert cfg.n_gpus == 4
        assert cfg.rank == 32
        assert cfg.threadblock_cols == 32

    def test_with_gpus(self):
        cfg = AmpedConfig().with_gpus(2)
        assert cfg.n_gpus == 2
        assert cfg.rank == 32  # everything else preserved

    def test_replace(self):
        cfg = AmpedConfig().replace(allgather="direct", schedule="dynamic")
        assert cfg.allgather == "direct"
        assert cfg.schedule == "dynamic"

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_gpus": 0},
            {"rank": 0},
            {"threadblock_cols": -1},
            {"shards_per_gpu": 0},
            {"policy": "magic"},
            {"schedule": "sometimes"},
            {"allgather": "telepathy"},
            {"batch_size": 0},
            {"batch_size": -5},
            {"workers": 0},
            {"workers": -1},
            {"workers": 100_000},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ReproError):
            AmpedConfig(**kw)

    def test_invalid_batch_size_message_is_clear(self):
        with pytest.raises(ReproError, match="batch_size must be >= 1"):
            AmpedConfig(batch_size=0)
        with pytest.raises(ReproError, match="workers must be in"):
            AmpedConfig(workers=0)

    def test_engine_knob_defaults(self):
        cfg = AmpedConfig()
        assert cfg.batch_size is None  # eager whole-shard granularity
        assert cfg.workers == 1

    def test_engine_knobs_accepted(self):
        cfg = AmpedConfig(batch_size=4096, workers=8)
        assert cfg.batch_size == 4096
        assert cfg.workers == 8

    def test_frozen(self):
        cfg = AmpedConfig()
        with pytest.raises(Exception):
            cfg.n_gpus = 8  # type: ignore[misc]
