"""Tests for AmpedConfig."""

import pytest

from repro.core.config import AmpedConfig
from repro.engine.autotune import MIN_AUTO_BATCH, auto_batch_size
from repro.errors import ReproError
from repro.simgpu.kernel import KernelCostModel


class TestAmpedConfig:
    def test_paper_defaults(self):
        cfg = AmpedConfig()
        # §5.1.5: 4 GPUs, R = 32, theta (P) = 32
        assert cfg.n_gpus == 4
        assert cfg.rank == 32
        assert cfg.threadblock_cols == 32

    def test_with_gpus(self):
        cfg = AmpedConfig().with_gpus(2)
        assert cfg.n_gpus == 2
        assert cfg.rank == 32  # everything else preserved

    def test_replace(self):
        cfg = AmpedConfig().replace(allgather="direct", schedule="dynamic")
        assert cfg.allgather == "direct"
        assert cfg.schedule == "dynamic"

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_gpus": 0},
            {"rank": 0},
            {"threadblock_cols": -1},
            {"shards_per_gpu": 0},
            {"policy": "magic"},
            {"schedule": "sometimes"},
            {"allgather": "telepathy"},
            {"batch_size": 0},
            {"batch_size": -5},
            {"batch_size": "adaptive"},
            {"batch_size": ""},
            {"workers": 0},
            {"workers": -1},
            {"workers": 100_000},
            {"backend": "gpu"},
            {"backend": ""},
            {"backend": None},
            {"stream_cache_fraction": 0},
            {"stream_cache_fraction": -0.25},
            {"stream_cache_fraction": 1.5},
            {"stream_cache_fraction": "lots"},
            {"out_of_core": True},
            {"out_of_core": True, "shard_cache": None},
            {"out_of_core": True, "shard_cache": ""},
            {"cache_codec": "brotli"},
            {"cache_codec": ""},
            {"cache_chunk_nnz": 0},
            {"cache_chunk_nnz": -4},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ReproError):
            AmpedConfig(**kw)

    def test_v2_cache_fields_accepted(self):
        cfg = AmpedConfig(
            out_of_core=True,
            shard_cache="t.npz",
            cache_codec="zstd",
            cache_chunk_nnz=4096,
        )
        assert cfg.cache_codec == "zstd" and cfg.cache_chunk_nnz == 4096
        # None means the v1 raw mmap format (the default)
        assert AmpedConfig().cache_codec is None
        assert AmpedConfig().cache_chunk_nnz is None

    def test_invalid_batch_size_message_is_clear(self):
        with pytest.raises(ReproError, match="batch_size must be >= 1"):
            AmpedConfig(batch_size=0)
        with pytest.raises(ReproError, match="workers must be in"):
            AmpedConfig(workers=0)
        with pytest.raises(ReproError, match="'auto'"):
            AmpedConfig(batch_size="adaptive")

    def test_out_of_core_error_is_actionable(self):
        with pytest.raises(ReproError, match="shard_cache"):
            AmpedConfig(out_of_core=True)
        with pytest.raises(ReproError, match="write_shard_cache"):
            AmpedConfig(out_of_core=True)

    def test_engine_knob_defaults(self):
        cfg = AmpedConfig()
        assert cfg.batch_size == "auto"  # cache-model autotuning by default
        assert cfg.backend == "serial"
        assert cfg.workers == 1
        assert cfg.prefetch is False
        assert cfg.stream_cache_fraction is None
        assert cfg.out_of_core is False
        assert cfg.shard_cache is None

    def test_engine_knobs_accepted(self):
        cfg = AmpedConfig(batch_size=4096, workers=8)
        assert cfg.batch_size == 4096
        assert cfg.workers == 8
        assert AmpedConfig(batch_size=None).batch_size is None
        assert AmpedConfig(batch_size="auto").batch_size == "auto"
        for backend in ("serial", "thread", "process"):
            assert AmpedConfig(backend=backend, workers=1).backend == backend
        assert AmpedConfig(prefetch=True).prefetch is True
        assert AmpedConfig(stream_cache_fraction=0.25).stream_cache_fraction == 0.25

    def test_out_of_core_accepted_with_cache(self):
        cfg = AmpedConfig(out_of_core=True, shard_cache="cache.npz")
        assert cfg.out_of_core is True
        assert cfg.shard_cache == "cache.npz"

    def test_frozen(self):
        cfg = AmpedConfig()
        with pytest.raises(Exception):
            cfg.n_gpus = 8  # type: ignore[misc]


class TestResolvedBackend:
    """`workers` is the deprecated alias: it maps onto the thread backend."""

    def test_default_is_serial(self):
        assert AmpedConfig().resolved_backend() == ("serial", 1)

    def test_workers_alias_upgrades_to_thread(self):
        assert AmpedConfig(workers=4).resolved_backend() == ("thread", 4)

    def test_explicit_backend_passes_through(self):
        assert AmpedConfig(backend="thread", workers=2).resolved_backend() == (
            "thread", 2,
        )
        assert AmpedConfig(backend="process", workers=3).resolved_backend() == (
            "process", 3,
        )

    def test_stream_lanes_counts_workers_and_prefetch(self):
        assert AmpedConfig().stream_lanes() == 1
        assert AmpedConfig(workers=4).stream_lanes() == 4
        assert AmpedConfig(backend="process", workers=2, prefetch=True
                           ).stream_lanes() == 3

    def test_routes_into_executor_backend(self):
        """AmpedMTTKRP builds its engine from the resolved backend pair."""
        import numpy as np

        from repro.core.amped import AmpedMTTKRP
        from repro.tensor.generate import zipf_coo

        tensor = zipf_coo((12, 10, 8), 200, exponents=1.0, seed=3)
        cfg = AmpedConfig(
            n_gpus=2, rank=4, shards_per_gpu=2, backend="thread", workers=2,
            prefetch=True,
        )
        with AmpedMTTKRP(tensor, cfg) as ex:
            assert ex.engine.backend.name == "thread"
            assert ex.engine.workers == 2
            assert ex.engine.prefetch is True
            rng = np.random.default_rng(0)
            factors = [rng.random((s, 4)) for s in tensor.shape]
            baseline = AmpedMTTKRP(
                tensor, AmpedConfig(n_gpus=2, rank=4, shards_per_gpu=2)
            )
            assert np.array_equal(
                ex.mttkrp(factors, 0), baseline.mttkrp(factors, 0)
            )


class TestStreamCacheFraction:
    """AmpedConfig.stream_cache_fraction threads into batch autotuning."""

    def test_override_changes_auto_batch(self):
        cost = KernelCostModel()
        base = AmpedConfig(out_of_core=True, shard_cache="x.npz")
        wide = base.replace(stream_cache_fraction=1.0)
        assert wide.resolved_batch_size(cost, 3) >= base.resolved_batch_size(
            cost, 3
        )
        assert wide.resolved_batch_size(cost, 3) == auto_batch_size(
            cost, 32, 3, cache_fraction=1.0
        )

    def test_env_var_applies_when_unset(self, monkeypatch):
        cost = KernelCostModel()
        base = AmpedConfig(out_of_core=True, shard_cache="x.npz")
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "1.0")
        assert base.resolved_batch_size(cost, 3) == auto_batch_size(
            cost, 32, 3, cache_fraction=1.0
        )


class TestResolvedBatchSize:
    """`batch_size="auto"` resolution is source-residency aware."""

    def test_auto_resident_is_eager(self):
        cfg = AmpedConfig()  # batch_size="auto", in-memory
        assert cfg.resolved_batch_size(KernelCostModel(), nmodes=3) is None

    def test_auto_out_of_core_is_cache_model(self):
        cfg = AmpedConfig(out_of_core=True, shard_cache="x.npz")
        cost = KernelCostModel()
        resolved = cfg.resolved_batch_size(cost, nmodes=3)
        assert resolved == auto_batch_size(cost, 32, 3)
        assert resolved >= MIN_AUTO_BATCH

    def test_explicit_values_pass_through(self):
        cost = KernelCostModel()
        assert AmpedConfig(batch_size=None).resolved_batch_size(cost, 3) is None
        assert AmpedConfig(batch_size=777).resolved_batch_size(cost, 3) == 777
        cfg = AmpedConfig(batch_size=777, out_of_core=True, shard_cache="x")
        assert cfg.resolved_batch_size(cost, 3) == 777

    def test_auto_scales_with_rank_and_cache(self):
        cfg = AmpedConfig(out_of_core=True, shard_cache="x.npz")
        cost = KernelCostModel()
        big_rank = cfg.replace(rank=128)
        assert big_rank.resolved_batch_size(cost, 3) <= cfg.resolved_batch_size(
            cost, 3
        )
        small_cache = cost.with_overrides(effective_cache_bytes=8 * 2**20)
        assert cfg.resolved_batch_size(small_cache, 3) <= cfg.resolved_batch_size(
            cost, 3
        )


class TestEnvValidationAtConstruction:
    """Satellite contract: a malformed REPRO_STREAM_CACHE_FRACTION (or host
    profile) fails *at config resolution* as a named ReproError — never as
    a bare ValueError deep inside batch autotuning."""

    @pytest.mark.parametrize("bad", ["lots", "1.5", "0", "-0.25", "nan"])
    def test_bad_fraction_env_rejected_eagerly(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", bad)
        with pytest.raises(ReproError, match="REPRO_STREAM_CACHE_FRACTION"):
            AmpedConfig()

    def test_valid_fraction_env_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "0.5")
        AmpedConfig()  # must not raise

    def test_blank_fraction_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "   ")
        AmpedConfig()

    def test_bad_host_profile_env_rejected_eagerly(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_HOST_PROFILE", str(tmp_path / "nope.json"))
        with pytest.raises(ReproError, match="cannot read host profile"):
            AmpedConfig()

    def test_explicit_override_beats_bad_env(self, monkeypatch):
        """An explicit per-run fraction wins the resolution, but the env
        var is still validated — silent acceptance of garbage would let it
        bite the next unconfigured run."""
        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "lots")
        with pytest.raises(ReproError):
            AmpedConfig(stream_cache_fraction=0.5)
        monkeypatch.delenv("REPRO_STREAM_CACHE_FRACTION")
        assert AmpedConfig(stream_cache_fraction=0.5).stream_cache_fraction == 0.5


class TestAutoBackendConfig:
    def test_auto_accepted(self):
        assert AmpedConfig(backend="auto").backend == "auto"

    def test_auto_with_workers_accepted(self):
        cfg = AmpedConfig(backend="auto", workers=4)
        assert cfg.backend == "auto" and cfg.workers == 4

    def test_resolved_backend_refuses_unresolved_auto(self):
        with pytest.raises(ReproError, match="resolve_auto_backend"):
            AmpedConfig(backend="auto").resolved_backend()

    def test_stream_lanes_needs_resolution_too(self):
        with pytest.raises(ReproError, match="resolve_auto_backend"):
            AmpedConfig(backend="auto").stream_lanes()

    def test_other_spellings_still_rejected(self):
        with pytest.raises(ReproError, match="backend"):
            AmpedConfig(backend="automatic")


class TestHostProfilePinning:
    """The host profile is loaded once at construction and pinned: what was
    validated is exactly what runs, regardless of later file changes."""

    def test_path_normalized_to_instance(self, tmp_path):
        from repro.engine.costmodel import DEFAULT_HOST_PROFILE, HostProfile

        path = DEFAULT_HOST_PROFILE.save(tmp_path / "p.json")
        cfg = AmpedConfig(host_profile=str(path))
        assert isinstance(cfg.host_profile, HostProfile)
        path.unlink()  # file gone: the pinned instance must keep working
        assert cfg.resolved_host_profile() == DEFAULT_HOST_PROFILE

    def test_env_var_pinned_at_construction(self, tmp_path, monkeypatch):
        from repro.engine.costmodel import DEFAULT_HOST_PROFILE, HostProfile

        path = DEFAULT_HOST_PROFILE.replace(hostname="pinned").save(
            tmp_path / "env.json"
        )
        monkeypatch.setenv("REPRO_HOST_PROFILE", str(path))
        cfg = AmpedConfig()
        assert isinstance(cfg.host_profile, HostProfile)
        monkeypatch.setenv("REPRO_HOST_PROFILE", str(tmp_path / "gone.json"))
        assert cfg.resolved_host_profile().hostname == "pinned"

    def test_bad_env_rejected_even_with_measured_profile(self, monkeypatch):
        """The env var is validated unconditionally — a measured profile
        winning the fraction resolution must not hide garbage in it."""
        from repro.engine.costmodel import DEFAULT_HOST_PROFILE

        monkeypatch.setenv("REPRO_STREAM_CACHE_FRACTION", "lots")
        profile = DEFAULT_HOST_PROFILE.replace(stream_cache_fraction=0.25)
        with pytest.raises(ReproError, match="REPRO_STREAM_CACHE_FRACTION"):
            AmpedConfig(host_profile=profile)
