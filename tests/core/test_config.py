"""Tests for AmpedConfig."""

import pytest

from repro.core.config import AmpedConfig
from repro.engine.autotune import MIN_AUTO_BATCH, auto_batch_size
from repro.errors import ReproError
from repro.simgpu.kernel import KernelCostModel


class TestAmpedConfig:
    def test_paper_defaults(self):
        cfg = AmpedConfig()
        # §5.1.5: 4 GPUs, R = 32, theta (P) = 32
        assert cfg.n_gpus == 4
        assert cfg.rank == 32
        assert cfg.threadblock_cols == 32

    def test_with_gpus(self):
        cfg = AmpedConfig().with_gpus(2)
        assert cfg.n_gpus == 2
        assert cfg.rank == 32  # everything else preserved

    def test_replace(self):
        cfg = AmpedConfig().replace(allgather="direct", schedule="dynamic")
        assert cfg.allgather == "direct"
        assert cfg.schedule == "dynamic"

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_gpus": 0},
            {"rank": 0},
            {"threadblock_cols": -1},
            {"shards_per_gpu": 0},
            {"policy": "magic"},
            {"schedule": "sometimes"},
            {"allgather": "telepathy"},
            {"batch_size": 0},
            {"batch_size": -5},
            {"batch_size": "adaptive"},
            {"batch_size": ""},
            {"workers": 0},
            {"workers": -1},
            {"workers": 100_000},
            {"out_of_core": True},
            {"out_of_core": True, "shard_cache": None},
            {"out_of_core": True, "shard_cache": ""},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ReproError):
            AmpedConfig(**kw)

    def test_invalid_batch_size_message_is_clear(self):
        with pytest.raises(ReproError, match="batch_size must be >= 1"):
            AmpedConfig(batch_size=0)
        with pytest.raises(ReproError, match="workers must be in"):
            AmpedConfig(workers=0)
        with pytest.raises(ReproError, match="'auto'"):
            AmpedConfig(batch_size="adaptive")

    def test_out_of_core_error_is_actionable(self):
        with pytest.raises(ReproError, match="shard_cache"):
            AmpedConfig(out_of_core=True)
        with pytest.raises(ReproError, match="write_shard_cache"):
            AmpedConfig(out_of_core=True)

    def test_engine_knob_defaults(self):
        cfg = AmpedConfig()
        assert cfg.batch_size == "auto"  # cache-model autotuning by default
        assert cfg.workers == 1
        assert cfg.out_of_core is False
        assert cfg.shard_cache is None

    def test_engine_knobs_accepted(self):
        cfg = AmpedConfig(batch_size=4096, workers=8)
        assert cfg.batch_size == 4096
        assert cfg.workers == 8
        assert AmpedConfig(batch_size=None).batch_size is None
        assert AmpedConfig(batch_size="auto").batch_size == "auto"

    def test_out_of_core_accepted_with_cache(self):
        cfg = AmpedConfig(out_of_core=True, shard_cache="cache.npz")
        assert cfg.out_of_core is True
        assert cfg.shard_cache == "cache.npz"

    def test_frozen(self):
        cfg = AmpedConfig()
        with pytest.raises(Exception):
            cfg.n_gpus = 8  # type: ignore[misc]


class TestResolvedBatchSize:
    """`batch_size="auto"` resolution is source-residency aware."""

    def test_auto_resident_is_eager(self):
        cfg = AmpedConfig()  # batch_size="auto", in-memory
        assert cfg.resolved_batch_size(KernelCostModel(), nmodes=3) is None

    def test_auto_out_of_core_is_cache_model(self):
        cfg = AmpedConfig(out_of_core=True, shard_cache="x.npz")
        cost = KernelCostModel()
        resolved = cfg.resolved_batch_size(cost, nmodes=3)
        assert resolved == auto_batch_size(cost, 32, 3)
        assert resolved >= MIN_AUTO_BATCH

    def test_explicit_values_pass_through(self):
        cost = KernelCostModel()
        assert AmpedConfig(batch_size=None).resolved_batch_size(cost, 3) is None
        assert AmpedConfig(batch_size=777).resolved_batch_size(cost, 3) == 777
        cfg = AmpedConfig(batch_size=777, out_of_core=True, shard_cache="x")
        assert cfg.resolved_batch_size(cost, 3) == 777

    def test_auto_scales_with_rank_and_cache(self):
        cfg = AmpedConfig(out_of_core=True, shard_cache="x.npz")
        cost = KernelCostModel()
        big_rank = cfg.replace(rank=128)
        assert big_rank.resolved_batch_size(cost, 3) <= cfg.resolved_batch_size(
            cost, 3
        )
        small_cache = cost.with_overrides(effective_cache_bytes=8 * 2**20)
        assert cfg.resolved_batch_size(small_cache, 3) <= cfg.resolved_batch_size(
            cost, 3
        )
