"""Tests for AmpedConfig."""

import pytest

from repro.core.config import AmpedConfig
from repro.errors import ReproError


class TestAmpedConfig:
    def test_paper_defaults(self):
        cfg = AmpedConfig()
        # §5.1.5: 4 GPUs, R = 32, theta (P) = 32
        assert cfg.n_gpus == 4
        assert cfg.rank == 32
        assert cfg.threadblock_cols == 32

    def test_with_gpus(self):
        cfg = AmpedConfig().with_gpus(2)
        assert cfg.n_gpus == 2
        assert cfg.rank == 32  # everything else preserved

    def test_replace(self):
        cfg = AmpedConfig().replace(allgather="direct", schedule="dynamic")
        assert cfg.allgather == "direct"
        assert cfg.schedule == "dynamic"

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_gpus": 0},
            {"rank": 0},
            {"threadblock_cols": -1},
            {"shards_per_gpu": 0},
            {"policy": "magic"},
            {"schedule": "sometimes"},
            {"allgather": "telepathy"},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ReproError):
            AmpedConfig(**kw)

    def test_frozen(self):
        cfg = AmpedConfig()
        with pytest.raises(Exception):
            cfg.n_gpus = 8  # type: ignore[misc]
