"""Tests for the AMPED functional executor."""

import numpy as np
import pytest

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.errors import ReproError
from repro.simgpu.presets import paper_platform
from repro.tensor.reference import mttkrp_coo_reference


@pytest.fixture
def executor(skewed_tensor):
    return AmpedMTTKRP(
        skewed_tensor,
        AmpedConfig(n_gpus=4, rank=6, shards_per_gpu=3),
        name="skewed",
    )


class TestFunctional:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_mttkrp_matches_reference(self, executor, skewed_tensor, make_factors, mode):
        factors = make_factors(skewed_tensor.shape)
        got = executor.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(skewed_tensor, factors, mode))

    def test_all_modes(self, executor, skewed_tensor, make_factors):
        factors = make_factors(skewed_tensor.shape)
        outs = executor.mttkrp_all_modes(factors)
        assert len(outs) == 3
        for mode, out in enumerate(outs):
            assert np.allclose(
                out, mttkrp_coo_reference(skewed_tensor, factors, mode)
            )

    def test_rank_follows_factors_not_config(self, executor, skewed_tensor, make_factors):
        factors = make_factors(skewed_tensor.shape, rank=3)
        out = executor.mttkrp(factors, 0)
        assert out.shape == (skewed_tensor.shape[0], 3)

    def test_isp_count_does_not_change_result(self, skewed_tensor, make_factors):
        factors = make_factors(skewed_tensor.shape)
        outs = []
        for isps in (1, 4):
            ex = AmpedMTTKRP(
                skewed_tensor,
                AmpedConfig(n_gpus=2, rank=6, shards_per_gpu=2),
                functional_isps=isps,
            )
            outs.append(ex.mttkrp(factors, 2))
        assert np.allclose(outs[0], outs[1])

    def test_run_iteration_exchanges_and_verifies(self, executor, skewed_tensor, make_factors):
        factors = make_factors(skewed_tensor.shape)
        outputs, result = executor.run_iteration(factors)
        assert result.ok
        for mode, out in enumerate(outputs):
            assert np.allclose(
                out, mttkrp_coo_reference(skewed_tensor, factors, mode)
            )


class TestConstruction:
    def test_platform_mismatch_rejected(self, small_tensor):
        with pytest.raises(ReproError):
            AmpedMTTKRP(
                small_tensor,
                AmpedConfig(n_gpus=4),
                platform=paper_platform(2),
            )

    def test_invalid_isps(self, small_tensor):
        with pytest.raises(ReproError):
            AmpedMTTKRP(small_tensor, functional_isps=0)

    def test_workload_derived(self, executor, skewed_tensor):
        assert executor.workload.nnz == skewed_tensor.nnz
        assert executor.workload.n_gpus == 4


class TestSimulation:
    def test_simulate_is_repeatable(self, executor):
        r1 = executor.simulate()
        r2 = executor.simulate()
        assert r1.total_time == pytest.approx(r2.total_time)

    def test_single_gpu_has_no_p2p(self, small_tensor):
        from repro.simgpu.trace import Category

        ex = AmpedMTTKRP(small_tensor, AmpedConfig(n_gpus=1, shards_per_gpu=2))
        res = ex.simulate()
        assert res.ok
        assert res.timeline.busy_time(category=Category.P2P) == 0.0
