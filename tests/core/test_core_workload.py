"""Tests for workload descriptors and cache-hit estimation."""

import numpy as np
import pytest

from repro.core.config import AmpedConfig
from repro.core.workload import (
    ModeWorkload,
    TensorWorkload,
    hit_rate_from_histogram,
)
from repro.errors import PartitionError
from repro.partition.plan import build_partition_plan
from repro.simgpu.kernel import KernelCostModel


class TestHitRate:
    def test_everything_fits(self):
        assert hit_rate_from_histogram(np.ones(10), 10) == 1.0
        assert hit_rate_from_histogram(np.ones(10), 100) == 1.0

    def test_no_cache(self):
        assert hit_rate_from_histogram(np.ones(10), 0) == 0.0

    def test_uniform_is_proportional(self):
        hit = hit_rate_from_histogram(np.ones(100), 25)
        assert hit == pytest.approx(0.25)

    def test_skew_beats_uniform(self):
        """Hot rows cached: skewed access distributions hit more."""
        skewed = np.zeros(100)
        skewed[:5] = 100.0
        skewed[5:] = 1.0
        assert hit_rate_from_histogram(skewed, 10) > hit_rate_from_histogram(
            np.ones(100), 10
        )

    def test_empty_histogram(self):
        assert hit_rate_from_histogram(np.empty(0), 5) == 1.0


class TestFromPlan:
    def test_descriptor_consistency(self, skewed_tensor):
        plan = build_partition_plan(skewed_tensor, 4, shards_per_gpu=4)
        wl = TensorWorkload.from_plan(
            skewed_tensor, plan, KernelCostModel(), rank=8, name="sk"
        )
        assert wl.nnz == skewed_tensor.nnz
        assert wl.shape == skewed_tensor.shape
        assert wl.n_gpus == 4
        for m, mw in enumerate(wl.modes):
            assert mw.nnz == skewed_tensor.nnz
            assert mw.rows_per_gpu.sum() == skewed_tensor.shape[m]
            assert 0.0 <= mw.factor_hit <= 1.0

    def test_gpu_nnz_matches_plan(self, skewed_tensor):
        plan = build_partition_plan(skewed_tensor, 3, shards_per_gpu=4)
        wl = TensorWorkload.from_plan(
            skewed_tensor, plan, KernelCostModel(), rank=8
        )
        for m in range(3):
            assert np.array_equal(wl.modes[m].gpu_nnz(), plan.gpu_nnz(m))

    def test_factor_bytes(self, small_tensor):
        plan = build_partition_plan(small_tensor, 2, shards_per_gpu=2)
        wl = TensorWorkload.from_plan(small_tensor, plan, KernelCostModel(), rank=8)
        assert wl.factor_bytes(8) == sum(small_tensor.shape) * 8 * 4
        assert wl.input_factor_bytes(0, 8) == (
            (small_tensor.shape[1] + small_tensor.shape[2]) * 8 * 4
        )

    def test_small_factors_fully_cached(self, small_tensor):
        """Tiny functional tensors must estimate ~perfect cache hits."""
        plan = build_partition_plan(small_tensor, 2, shards_per_gpu=2)
        wl = TensorWorkload.from_plan(small_tensor, plan, KernelCostModel(), rank=8)
        for mw in wl.modes:
            assert mw.factor_hit == pytest.approx(1.0)


class TestValidation:
    def test_mode_order_enforced(self):
        mw = ModeWorkload(
            mode=1,
            extent=4,
            shard_nnz=np.array([2]),
            assignment=np.array([0]),
            rows_per_gpu=np.array([4]),
            factor_hit=1.0,
        )
        with pytest.raises(PartitionError, match="out of order"):
            TensorWorkload(name="x", shape=(4,), nnz=2, modes=(mw,))

    def test_bad_factor_hit(self):
        with pytest.raises(PartitionError):
            ModeWorkload(
                mode=0,
                extent=4,
                shard_nnz=np.array([2]),
                assignment=np.array([0]),
                rows_per_gpu=np.array([4]),
                factor_hit=1.5,
            )

    def test_misaligned_assignment(self):
        with pytest.raises(PartitionError):
            ModeWorkload(
                mode=0,
                extent=4,
                shard_nnz=np.array([2, 3]),
                assignment=np.array([0]),
                rows_per_gpu=np.array([4]),
                factor_hit=1.0,
            )
