"""Tests for the shared result records and the bench harness plumbing."""

import numpy as np
import pytest

from repro.bench.harness import model_workloads, run_amped_model, run_backend_model
from repro.core.config import AmpedConfig
from repro.core.results import ModeTiming, RunResult
from repro.errors import SimulationError
from repro.simgpu.trace import Category, Timeline


class TestModeTiming:
    def test_durations(self):
        mt = ModeTiming(mode=0, start=1.0, compute_done=3.0, end=4.5)
        assert mt.duration == pytest.approx(3.5)
        assert mt.exchange_time == pytest.approx(1.5)


class TestRunResult:
    def test_error_result_not_ok(self):
        r = RunResult(method="x", tensor_name="t", n_gpus=1, error="runtime error")
        assert not r.ok
        assert r.total_time == 0.0

    def test_compute_overhead_empty_is_zero(self):
        r = RunResult(method="x", tensor_name="t", n_gpus=2)
        assert r.compute_overhead() == 0.0

    def test_compute_overhead_formula(self):
        r = RunResult(method="x", tensor_name="t", n_gpus=2)
        r.per_gpu_compute = np.array([4.0, 6.0])
        assert r.compute_overhead() == pytest.approx(0.2)

    def test_speedup_over(self):
        a = RunResult(method="a", tensor_name="t", n_gpus=4, total_time=2.0)
        b = RunResult(method="b", tensor_name="t", n_gpus=1, total_time=10.0)
        assert a.speedup_over(b) == pytest.approx(5.0)

    def test_speedup_over_failed_run_is_nan(self):
        a = RunResult(method="a", tensor_name="t", n_gpus=4, total_time=2.0)
        bad = RunResult(method="b", tensor_name="t", n_gpus=1, error="oom")
        assert np.isnan(a.speedup_over(bad))

    def test_breakdown_delegates_to_timeline(self):
        r = RunResult(method="x", tensor_name="t", n_gpus=1)
        tl = Timeline()
        tl.add(0, Category.COMPUTE, 0.0, 1.0)
        tl.add(0, Category.H2D, 0.0, 1.0)
        r.timeline = tl
        bd = r.breakdown()
        assert bd["computation"] == pytest.approx(0.5)


class TestHarness:
    def test_model_workloads_covers_table3(self):
        wls = model_workloads(AmpedConfig(shards_per_gpu=4))
        assert set(wls) == {"amazon", "patents", "reddit", "twitch"}

    def test_model_workloads_cached(self):
        cfg = AmpedConfig(shards_per_gpu=4)
        a = model_workloads(cfg)["amazon"]
        b = model_workloads(cfg)["amazon"]
        assert a is b

    def test_run_amped_model_fresh_platform_each_call(self):
        cfg = AmpedConfig(shards_per_gpu=4)
        wl = model_workloads(cfg)["patents"]
        r1 = run_amped_model(wl, cfg)
        r2 = run_amped_model(wl, cfg)
        assert r1.total_time == pytest.approx(r2.total_time)

    def test_run_backend_model(self):
        cfg = AmpedConfig(shards_per_gpu=4)
        wl = model_workloads(cfg)["twitch"]
        r = run_backend_model("blco", wl)
        assert r.ok and r.method == "blco"

    def test_gpu_count_flows_through(self):
        cfg = AmpedConfig(n_gpus=2, shards_per_gpu=4)
        wl = model_workloads(cfg)["amazon"]
        assert wl.n_gpus == 2
        r = run_amped_model(wl, cfg)
        assert r.n_gpus == 2
        with pytest.raises(SimulationError):
            run_amped_model(wl, AmpedConfig(n_gpus=3))
