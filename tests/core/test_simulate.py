"""Tests for the Algorithm 1 timing simulation."""

import numpy as np
import pytest

from repro.core.config import AmpedConfig
from repro.core.simulate import amped_memory_plan, host_memory_plan, simulate_amped
from repro.core.workload import TensorWorkload
from repro.datasets.profiles import AMAZON, REDDIT
from repro.engine.autotune import auto_batch_size
from repro.datasets.workload import paper_workload
from repro.errors import SimulationError
from repro.simgpu.device import GPUSpec
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.platform import MultiGPUPlatform
from repro.simgpu.presets import (
    EPYC_9654_DUAL,
    PCIE_GEN4_X16,
    P2P_PCIE,
    paper_platform,
)
from repro.simgpu.trace import Category


@pytest.fixture
def cost():
    return KernelCostModel()


@pytest.fixture
def amazon_wl(cost):
    return paper_workload(AMAZON, AmpedConfig(), cost)


class TestSimulateAmped:
    def test_basic_run(self, amazon_wl, cost):
        res = simulate_amped(paper_platform(4), cost, amazon_wl, AmpedConfig())
        assert res.ok
        assert res.total_time > 0
        assert len(res.mode_times) == 3
        assert res.per_gpu_compute.shape == (4,)

    def test_mode_times_ordered_and_cover_total(self, amazon_wl, cost):
        res = simulate_amped(paper_platform(4), cost, amazon_wl, AmpedConfig())
        prev_end = 0.0
        for mt in res.mode_times:
            assert mt.start == pytest.approx(prev_end)
            assert mt.compute_done >= mt.start
            assert mt.end >= mt.compute_done
            prev_end = mt.end
        assert prev_end == pytest.approx(res.total_time)

    def test_timeline_has_all_categories(self, amazon_wl, cost):
        res = simulate_amped(paper_platform(4), cost, amazon_wl, AmpedConfig())
        tl = res.timeline
        assert tl.busy_time(category=Category.COMPUTE) > 0
        assert tl.busy_time(category=Category.H2D) > 0
        assert tl.busy_time(category=Category.P2P) > 0

    def test_gpu_count_mismatch_rejected(self, amazon_wl, cost):
        with pytest.raises(SimulationError):
            simulate_amped(paper_platform(2), cost, amazon_wl, AmpedConfig())
        with pytest.raises(SimulationError):
            simulate_amped(
                paper_platform(2), cost, amazon_wl, AmpedConfig(n_gpus=2)
            )

    def test_dynamic_schedule_runs(self, amazon_wl, cost):
        cfg = AmpedConfig(schedule="dynamic")
        res = simulate_amped(paper_platform(4), cost, amazon_wl, cfg)
        assert res.ok and res.total_time > 0

    def test_direct_allgather_runs(self, amazon_wl, cost):
        cfg = AmpedConfig(allgather="direct")
        res = simulate_amped(paper_platform(4), cost, amazon_wl, cfg)
        assert res.ok and res.total_time > 0

    def test_double_buffer_helps(self, amazon_wl, cost):
        fast = simulate_amped(
            paper_platform(4), cost, amazon_wl, AmpedConfig(double_buffer=True)
        )
        slow = simulate_amped(
            paper_platform(4), cost, amazon_wl, AmpedConfig(double_buffer=False)
        )
        assert fast.total_time < slow.total_time

    def test_memory_freed_after_run(self, amazon_wl, cost):
        plat = paper_platform(4)
        simulate_amped(plat, cost, amazon_wl, AmpedConfig())
        for g in range(4):
            assert plat.gpu(g).memory.used == 0

    def test_oom_produces_error_result(self, amazon_wl, cost):
        tiny_gpu = GPUSpec(
            name="tiny", n_sms=8, fp32_tflops=1.0,
            mem_capacity=64 * 2**20, mem_bandwidth=100e9,
        )
        plat = MultiGPUPlatform(
            gpu_spec=tiny_gpu, n_gpus=4, host=EPYC_9654_DUAL,
            host_link=PCIE_GEN4_X16, p2p_link=P2P_PCIE,
        )
        res = simulate_amped(plat, cost, amazon_wl, AmpedConfig())
        assert not res.ok
        assert "runtime error" in res.error
        for g in range(4):
            assert plat.gpu(g).memory.used == 0  # rollback on OOM

    def test_more_gpus_is_faster(self, cost):
        times = {}
        for m in (1, 2, 4):
            cfg = AmpedConfig(n_gpus=m)
            wl = paper_workload(REDDIT, cfg, cost)
            times[m] = simulate_amped(paper_platform(m), cost, wl, cfg).total_time
        assert times[4] < times[2] < times[1]


class TestMemoryPlan:
    def test_plan_contents(self, amazon_wl, cost):
        plan = amped_memory_plan(amazon_wl, AmpedConfig(), cost)
        assert plan["factor_matrices"] == amazon_wl.factor_bytes(32)
        assert plan["shard_staging"] > 0

    def test_single_buffer_halves_staging(self, amazon_wl, cost):
        dbl = amped_memory_plan(amazon_wl, AmpedConfig(double_buffer=True), cost)
        sgl = amped_memory_plan(amazon_wl, AmpedConfig(double_buffer=False), cost)
        assert dbl["shard_staging"] == 2 * sgl["shard_staging"]

    def test_manual_batch_bounds_staging(self, amazon_wl, cost):
        batched = amped_memory_plan(amazon_wl, AmpedConfig(batch_size=1000), cost)
        assert batched["shard_staging"] == 2 * 1000 * cost.coo_element_bytes(3)

    def test_out_of_core_auto_bounds_staging(self, amazon_wl, cost):
        """batch_size="auto" out of core stages O(batch), not O(shard)."""
        cfg = AmpedConfig(out_of_core=True, shard_cache="amazon.npz")
        plan = amped_memory_plan(amazon_wl, cfg, cost)
        batch = auto_batch_size(cost, cfg.rank, 3)
        assert plan["shard_staging"] == 2 * batch * cost.coo_element_bytes(3)
        eager = amped_memory_plan(amazon_wl, AmpedConfig(batch_size=None), cost)
        assert plan["shard_staging"] < eager["shard_staging"]


class TestHostMemoryPlan:
    """The accounting that separates in-memory from out-of-core residency."""

    def test_resident_path_is_o_nnz(self, amazon_wl, cost):
        plan = host_memory_plan(amazon_wl, AmpedConfig(), cost)
        assert plan["tensor_resident"] == (
            3 * amazon_wl.nnz * cost.host_element_bytes(3)
        )

    def test_out_of_core_is_o_batch_not_o_nnz(self, amazon_wl, cost):
        """Peak resident tensor bytes are bounded by the batch, independent
        of nnz — the out-of-core acceptance criterion."""
        cfg = AmpedConfig(
            out_of_core=True, shard_cache="amazon.npz", batch_size=5000
        )
        plan = host_memory_plan(amazon_wl, cfg, cost)
        assert plan["tensor_resident"] == 2 * 5000 * cost.host_element_bytes(3)
        # same config, 2.7x-larger tensor: identical resident bound
        reddit_wl = paper_workload(REDDIT, AmpedConfig(), cost)
        assert (
            host_memory_plan(reddit_wl, cfg, cost)["tensor_resident"]
            == plan["tensor_resident"]
        )
        # while the in-memory residency scales with nnz
        assert (
            host_memory_plan(reddit_wl, AmpedConfig(), cost)["tensor_resident"]
            > host_memory_plan(amazon_wl, AmpedConfig(), cost)["tensor_resident"]
        )

    def test_out_of_core_auto_uses_cache_model(self, amazon_wl, cost):
        cfg = AmpedConfig(out_of_core=True, shard_cache="amazon.npz")
        plan = host_memory_plan(amazon_wl, cfg, cost)
        batch = auto_batch_size(cost, cfg.rank, 3)
        assert plan["tensor_resident"] == 2 * batch * cost.host_element_bytes(3)

    def test_out_of_core_charges_one_window_per_stream_lane(
        self, amazon_wl, cost
    ):
        """Backend workers and the prefetcher each stage their own batch
        window; double buffering adds one more — the backend-aware host
        accounting (defaults stay the classic two windows)."""
        base = AmpedConfig(
            out_of_core=True, shard_cache="amazon.npz", batch_size=5000
        )
        elem = cost.host_element_bytes(3)
        cases = [
            (base, 2),  # 1 lane + double buffer
            (base.replace(double_buffer=False), 1),
            (base.replace(backend="process", workers=4), 5),
            (base.replace(backend="thread", workers=2, prefetch=True), 4),
            (base.replace(workers=3, double_buffer=False), 3),  # alias
        ]
        for cfg, windows in cases:
            plan = host_memory_plan(amazon_wl, cfg, cost)
            assert plan["tensor_resident"] == windows * 5000 * elem, cfg

    def test_v2_compressed_cache_charges_decompress_staging(
        self, amazon_wl, cost
    ):
        """A v2 chunked/compressed cache double-buffers two decompressed
        chunks per stream lane; the raw formats charge nothing."""
        elem = cost.host_element_bytes(3)
        base = AmpedConfig(
            out_of_core=True, shard_cache="amazon.npz", batch_size=5000
        )
        assert host_memory_plan(amazon_wl, base, cost)[
            "decompress_staging"
        ] == 0  # v1 mmap
        raw_v2 = base.replace(cache_codec="none", cache_chunk_nnz=4096)
        assert host_memory_plan(amazon_wl, raw_v2, cost)[
            "decompress_staging"
        ] == 0  # uncompressed frames decompress in place
        zlib_v2 = base.replace(cache_codec="zlib", cache_chunk_nnz=4096)
        plan = host_memory_plan(amazon_wl, zlib_v2, cost)
        assert plan["decompress_staging"] == 1 * 2 * 4096 * elem
        wide = zlib_v2.replace(backend="process", workers=4, prefetch=True)
        assert host_memory_plan(amazon_wl, wide, cost)[
            "decompress_staging"
        ] == 5 * 2 * 4096 * elem  # one double buffer per stream lane
        # resident runs never stage decompression
        assert host_memory_plan(amazon_wl, AmpedConfig(), cost)[
            "decompress_staging"
        ] == 0

    def test_v2_default_chunk_when_unset(self, amazon_wl, cost):
        from repro.tensor.io_v2 import DEFAULT_CHUNK_NNZ

        cfg = AmpedConfig(
            out_of_core=True, shard_cache="a.npz", batch_size=5000,
            cache_codec="zstd",
        )
        plan = host_memory_plan(amazon_wl, cfg, cost)
        assert plan["decompress_staging"] == (
            2 * DEFAULT_CHUNK_NNZ * cost.host_element_bytes(3)
        )

    def test_factor_matrices_always_resident(self, amazon_wl, cost):
        cfg = AmpedConfig(out_of_core=True, shard_cache="amazon.npz")
        for config in (AmpedConfig(), cfg):
            plan = host_memory_plan(amazon_wl, config, cost)
            assert plan["factor_matrices"] == amazon_wl.factor_bytes(
                32, cost.host_value_bytes
            )

    def test_simulate_rejects_tensor_larger_than_host_ram(self, amazon_wl, cost):
        """A resident run that cannot fit host RAM errors out with a pointer
        to the out-of-core path; the out-of-core run proceeds."""
        from repro.simgpu.device import HostSpec
        from repro.simgpu.presets import PCIE_GEN4_X16, P2P_PCIE, RTX6000_ADA

        # 4 GiB: holds the factor matrices (~2.2 GB at amazon scale) and the
        # batch windows, but nowhere near the 163 GB resident element list.
        tiny_host = HostSpec(
            name="tiny", n_cores=8, fp32_tflops=1.0,
            mem_capacity=4 * 2**30, mem_bandwidth=100e9,
        )
        plat = MultiGPUPlatform(
            gpu_spec=RTX6000_ADA, n_gpus=4, host=tiny_host,
            host_link=PCIE_GEN4_X16, p2p_link=P2P_PCIE,
        )
        res = simulate_amped(plat, cost, amazon_wl, AmpedConfig())
        assert not res.ok
        assert "out of core" in res.error
        plat.reset()
        ooc = simulate_amped(
            plat, cost, amazon_wl,
            AmpedConfig(out_of_core=True, shard_cache="amazon.npz"),
        )
        assert ooc.ok
