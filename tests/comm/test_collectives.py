"""Tests for host-mediated collectives and primitives."""

import numpy as np
import pytest

from repro.comm.collectives import (
    broadcast_time,
    host_gather_merge,
    host_gather_merge_time,
)
from repro.comm.primitives import RankBuffers, barrier_time
from repro.errors import CommunicationError
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import paper_platform
from repro.simgpu.trace import Category


class TestMergeFunctional:
    def test_sums_partials(self):
        parts = [np.full((3, 2), float(i)) for i in range(4)]
        merged = host_gather_merge(parts)
        assert np.allclose(merged, 0 + 1 + 2 + 3)

    def test_single_partial(self):
        p = np.random.default_rng(0).random((4, 4))
        assert np.allclose(host_gather_merge([p]), p)

    def test_shape_mismatch(self):
        with pytest.raises(CommunicationError):
            host_gather_merge([np.zeros((2, 2)), np.zeros((3, 2))])

    def test_empty_rejected(self):
        with pytest.raises(CommunicationError):
            host_gather_merge([])

    def test_dtype_mismatch(self):
        with pytest.raises(CommunicationError, match="dtype"):
            host_gather_merge(
                [np.zeros((2, 2)), np.zeros((2, 2), dtype=np.float32)]
            )


class TestMergeTimed:
    def test_charges_d2h_host_h2d(self):
        plat = paper_platform(4)
        cost = KernelCostModel()
        ends = host_gather_merge_time(plat, cost, 10**6, 32, [0.0] * 4)
        assert len(set(ends)) == 1
        tl = plat.timeline
        assert tl.busy_time(category=Category.D2H) > 0
        assert tl.busy_time(category=Category.HOST) > 0
        assert tl.busy_time(category=Category.H2D) > 0

    def test_serialized_phases(self):
        """Broadcast cannot start before merge which needs all gathers."""
        plat = paper_platform(2)
        cost = KernelCostModel()
        host_gather_merge_time(plat, cost, 10**6, 32, [0.0, 0.0])
        d2h_end = max(
            s.end for s in plat.timeline.spans if s.category == Category.D2H
        )
        host_start = min(
            s.start for s in plat.timeline.spans if s.category == Category.HOST
        )
        h2d_start = min(
            s.start for s in plat.timeline.spans if s.category == Category.H2D
        )
        assert host_start >= d2h_end
        assert h2d_start >= host_start

    def test_wrong_ready_length(self):
        plat = paper_platform(2)
        with pytest.raises(CommunicationError):
            host_gather_merge_time(plat, KernelCostModel(), 100, 32, [0.0])


class TestBroadcastAndPrimitives:
    def test_broadcast_concurrent_links(self):
        plat = paper_platform(4)
        ends = broadcast_time(plat, 64e9, 0.0)
        assert ends[0] == pytest.approx(1.0, rel=1e-3)

    def test_barrier_time(self):
        assert barrier_time([1.0, 2.0], overhead=0.5) == 2.5
        with pytest.raises(CommunicationError):
            barrier_time([])
        with pytest.raises(CommunicationError):
            barrier_time([1.0], overhead=-1)

    def test_rank_buffers(self):
        rb = RankBuffers(0)
        rb.put("y", np.ones(3))
        assert rb.has("y")
        assert np.allclose(rb.get("y"), 1.0)
        with pytest.raises(CommunicationError):
            rb.get("missing")
