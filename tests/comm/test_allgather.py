"""Tests for the ring all-gather (Algorithm 3)."""

import numpy as np
import pytest

from repro.comm.allgather import (
    direct_allgather_time,
    ring_allgather,
    ring_allgather_time,
)
from repro.errors import CommunicationError
from repro.simgpu.presets import paper_platform


class TestFunctionalRing:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 7])
    def test_all_ranks_hold_all_chunks(self, m):
        rng = np.random.default_rng(m)
        chunks = [rng.random((3, 2)) for _ in range(m)]
        views = ring_allgather(chunks)
        assert len(views) == m
        for rank_view in views:
            for c, chunk in enumerate(chunks):
                assert np.allclose(rank_view[c], chunk)

    def test_views_are_copies(self):
        chunks = [np.zeros((2, 2)), np.ones((2, 2))]
        views = ring_allgather(chunks)
        views[0][1][0, 0] = 99.0
        assert views[1][1][0, 0] == 1.0  # other rank unaffected

    def test_empty_rank_list_rejected(self):
        with pytest.raises(CommunicationError):
            ring_allgather([])

    def test_variable_chunk_shapes(self):
        """Ranks may own differently-sized row blocks (LPT assignment)."""
        chunks = [np.ones((i + 1, 4)) * i for i in range(4)]
        views = ring_allgather(chunks)
        for v in views:
            assert [c.shape[0] for c in v] == [1, 2, 3, 4]

    def test_ragged_chunk_rejected(self):
        """A chunk that cannot form a rectangular array is a named error."""
        with pytest.raises(CommunicationError, match="ragged"):
            ring_allgather([np.ones((2, 3)), [[1.0, 2.0], [3.0]]])

    def test_trailing_dim_mismatch_rejected(self):
        """Row counts may differ, but the rank (column) dim must agree."""
        with pytest.raises(CommunicationError, match="ragged"):
            ring_allgather([np.ones((2, 3)), np.ones((2, 4))])

    def test_mixed_dtypes_rejected(self):
        with pytest.raises(CommunicationError, match="dtype"):
            ring_allgather(
                [np.ones((2, 3)), np.ones((2, 3), dtype=np.float32)]
            )


class TestTimedRing:
    def test_single_gpu_is_noop(self):
        plat = paper_platform(1)
        ends = ring_allgather_time(plat, [100.0], [5.0])
        assert ends == [5.0]

    def test_m_minus_one_steps_charged(self):
        plat = paper_platform(4)
        ring_allgather_time(plat, [1e6] * 4, [0.0] * 4)
        # 4 ranks x 3 steps = 12 sends
        from repro.simgpu.trace import Category

        sends = [s for s in plat.timeline.spans if s.category == Category.P2P]
        assert len(sends) == 12

    def test_completion_scales_with_chunk_bytes(self):
        plat1 = paper_platform(4)
        t_small = ring_allgather_time(plat1, [1e6] * 4, [0.0] * 4)[0]
        plat2 = paper_platform(4)
        t_big = ring_allgather_time(plat2, [1e8] * 4, [0.0] * 4)[0]
        assert t_big > t_small

    def test_all_ranks_finish_together(self):
        plat = paper_platform(3)
        ends = ring_allgather_time(plat, [1e6, 2e6, 3e6], [0.0, 0.1, 0.2])
        assert len(set(ends)) == 1

    def test_starts_after_latest_ready(self):
        plat = paper_platform(2)
        ends = ring_allgather_time(plat, [0.0, 0.0], [0.0, 10.0])
        assert ends[0] >= 10.0

    def test_wrong_lengths_rejected(self):
        plat = paper_platform(2)
        with pytest.raises(CommunicationError):
            ring_allgather_time(plat, [1.0], [0.0, 0.0])


class TestDirectVsRing:
    def test_direct_slower_for_bulk(self):
        """The paper picks the ring model for bulk transfers — verify why:
        direct all-gather serializes M-1 sends per sender."""
        ring_plat = paper_platform(4)
        ring_t = ring_allgather_time(ring_plat, [1e8] * 4, [0.0] * 4)[0]
        direct_plat = paper_platform(4)
        direct_t = direct_allgather_time(direct_plat, [1e8] * 4, [0.0] * 4)[0]
        assert ring_t <= direct_t

    def test_direct_single_gpu(self):
        plat = paper_platform(1)
        assert direct_allgather_time(plat, [1.0], [2.0]) == [2.0]
