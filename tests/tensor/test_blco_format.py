"""Tests for the BLCO blocked-linearized format."""

import numpy as np
import pytest

from repro.tensor.formats.blco import BLCOTensor
from repro.tensor.reference import mttkrp_coo_reference


class TestConstruction:
    def test_roundtrip(self, small_tensor):
        b = BLCOTensor.from_coo(small_tensor)
        assert b.to_coo().allclose(small_tensor)

    def test_small_tensor_single_block(self, small_tensor):
        # 15*12*10 needs ~11 bits -> one block at the default word size
        b = BLCOTensor.from_coo(small_tensor)
        assert b.n_blocks == 1

    def test_forced_blocking(self, small_tensor):
        b = BLCOTensor.from_coo(small_tensor, word_bits=6)
        assert b.n_blocks > 1
        assert b.to_coo().allclose(small_tensor)
        assert b.nnz == small_tensor.nnz

    def test_block_ids_distinct(self, small_tensor):
        b = BLCOTensor.from_coo(small_tensor, word_bits=6)
        ids = [blk.block_id for blk in b.blocks]
        assert len(set(ids)) == len(ids)

    def test_device_bytes_scale_with_nnz(self, small_tensor):
        b = BLCOTensor.from_coo(small_tensor)
        per_block = b.device_bytes_per_block()
        assert sum(per_block) == b.device_bytes()
        assert b.device_bytes() >= small_tensor.nnz * 8

    def test_empty(self):
        from repro.tensor.coo import SparseTensorCOO

        t = SparseTensorCOO(np.empty((0, 3), dtype=np.int64), np.empty(0), (4, 4, 4))
        b = BLCOTensor.from_coo(t)
        assert b.n_blocks == 0
        assert b.to_coo().nnz == 0


class TestMTTKRP:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_reference(self, small_tensor, make_factors, mode):
        b = BLCOTensor.from_coo(small_tensor)
        factors = make_factors(small_tensor.shape)
        got = b.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(small_tensor, factors, mode))

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_blocked_matches_reference(self, skewed_tensor, make_factors, mode):
        """Multi-block streaming accumulates across blocks correctly."""
        b = BLCOTensor.from_coo(skewed_tensor, word_bits=8)
        assert b.n_blocks > 1
        factors = make_factors(skewed_tensor.shape)
        got = b.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(skewed_tensor, factors, mode))

    def test_block_by_block_streaming(self, skewed_tensor, make_factors):
        """mttkrp_block over an external accumulator equals full mttkrp."""
        b = BLCOTensor.from_coo(skewed_tensor, word_bits=8)
        factors = make_factors(skewed_tensor.shape)
        out = np.zeros((skewed_tensor.shape[1], 6))
        for blk in b.iter_blocks():
            b.mttkrp_block(blk, factors, 1, out)
        assert np.allclose(out, b.mttkrp(factors, 1))

    def test_five_mode(self, five_mode_tensor, make_factors):
        b = BLCOTensor.from_coo(five_mode_tensor)
        factors = make_factors(five_mode_tensor.shape, rank=3)
        got = b.mttkrp(factors, 4)
        assert np.allclose(
            got, mttkrp_coo_reference(five_mode_tensor, factors, 4)
        )
