"""Tests for the vectorized functional kernels."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.kernels import (
    ec_contributions,
    mttkrp_sorted_segments,
    scatter_rows_atomic,
    segment_starts,
)
from repro.tensor.reference import mttkrp_coo_reference


class TestEcContributions:
    def test_matches_manual_product(self, tiny_tensor, make_factors):
        factors = make_factors(tiny_tensor.shape, rank=4)
        contrib = ec_contributions(
            tiny_tensor.indices, tiny_tensor.values, factors, mode=2
        )
        for i in range(tiny_tensor.nnz):
            i0, i1, _ = tiny_tensor.indices[i]
            want = tiny_tensor.values[i] * factors[0][i0] * factors[1][i1]
            assert np.allclose(contrib[i], want)

    def test_out_parameter(self, tiny_tensor, make_factors):
        factors = make_factors(tiny_tensor.shape, rank=4)
        out = np.empty((tiny_tensor.nnz, 4))
        res = ec_contributions(
            tiny_tensor.indices, tiny_tensor.values, factors, 0, out=out
        )
        assert res is out

    def test_bad_out_shape(self, tiny_tensor, make_factors):
        factors = make_factors(tiny_tensor.shape, rank=4)
        with pytest.raises(TensorFormatError):
            ec_contributions(
                tiny_tensor.indices,
                tiny_tensor.values,
                factors,
                0,
                out=np.empty((1, 4)),
            )

    def test_mode_out_of_range(self, tiny_tensor, make_factors):
        with pytest.raises(TensorFormatError):
            ec_contributions(
                tiny_tensor.indices,
                tiny_tensor.values,
                make_factors(tiny_tensor.shape),
                7,
            )

    def test_empty_factors_rejected(self, tiny_tensor):
        """Regression: an empty factor list used to fall through to
        ``factors[0]`` (IndexError) instead of a named error."""
        with pytest.raises(TensorFormatError, match="non-empty"):
            ec_contributions(tiny_tensor.indices, tiny_tensor.values, [], 0)

    def test_mismatched_factor_rank_rejected(self, tiny_tensor, make_factors):
        """Regression: a factor whose rank disagrees with factor 0 used to
        produce a broadcasting error deep in the Hadamard loop (or, for a
        1-D factor, silently wrong shapes) instead of naming the factor."""
        factors = make_factors(tiny_tensor.shape, rank=4)
        factors[2] = factors[2][:, :3]
        with pytest.raises(TensorFormatError, match="factor 2"):
            ec_contributions(tiny_tensor.indices, tiny_tensor.values, factors, 0)
        factors = make_factors(tiny_tensor.shape, rank=4)
        factors[1] = factors[1][:, 0]  # 1-D, not a matrix
        with pytest.raises(TensorFormatError, match="factor 1"):
            ec_contributions(tiny_tensor.indices, tiny_tensor.values, factors, 0)


class TestScatterRowsAtomic:
    def test_accumulates_duplicates(self):
        out = np.zeros((3, 2))
        rows = np.array([1, 1, 2, 1])
        contrib = np.ones((4, 2))
        scatter_rows_atomic(out, rows, contrib)
        assert np.allclose(out[1], [3, 3])
        assert np.allclose(out[2], [1, 1])
        assert np.allclose(out[0], [0, 0])

    def test_matches_np_add_at(self):
        rng = np.random.default_rng(0)
        out1 = np.zeros((10, 4))
        out2 = np.zeros((10, 4))
        rows = rng.integers(0, 10, size=50)
        contrib = rng.random((50, 4))
        scatter_rows_atomic(out1, rows, contrib)
        np.add.at(out2, rows, contrib)
        assert np.allclose(out1, out2)

    def test_shape_checks(self):
        with pytest.raises(TensorFormatError):
            scatter_rows_atomic(np.zeros((3, 2)), np.zeros(2, dtype=int), np.zeros((3, 2)))
        with pytest.raises(TensorFormatError):
            scatter_rows_atomic(np.zeros((3, 2)), np.zeros(3, dtype=int), np.zeros((3, 5)))

    def test_row_out_of_range_rejected(self):
        """Regression: ``np.add.at`` would have raised a bare IndexError
        (and a compiled tier would have written out of bounds)."""
        out = np.zeros((3, 2))
        contrib = np.ones((2, 2))
        with pytest.raises(TensorFormatError, match=r"\[1, 3\].*3 rows"):
            scatter_rows_atomic(out, np.array([1, 3]), contrib)
        assert np.all(out == 0)  # rejected before any partial write

    def test_negative_row_rejected(self):
        """Negative indices are *not* python-style wraparound here: a row of
        ``-1`` silently accumulating into the last output row was the bug."""
        out = np.zeros((3, 2))
        contrib = np.ones((2, 2))
        with pytest.raises(TensorFormatError, match=r"\[-1, 2\]"):
            scatter_rows_atomic(out, np.array([-1, 2]), contrib)
        assert np.all(out == 0)

    def test_empty_rows_ok(self):
        out = np.zeros((3, 2))
        res = scatter_rows_atomic(
            out, np.empty(0, dtype=np.int64), np.empty((0, 2))
        )
        assert res is out and np.all(out == 0)


class TestSegmentStarts:
    def test_basic_runs(self):
        keys = np.array([0, 0, 1, 1, 1, 4])
        assert segment_starts(keys).tolist() == [0, 2, 5]

    def test_all_distinct(self):
        keys = np.array([3, 5, 9])
        assert segment_starts(keys).tolist() == [0, 1, 2]

    def test_single_run(self):
        assert segment_starts(np.array([7, 7, 7])).tolist() == [0]

    def test_empty(self):
        assert segment_starts(np.empty(0, dtype=np.int64)).size == 0


class TestMttkrpSortedSegments:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_reference(self, small_tensor, make_factors, mode):
        factors = make_factors(small_tensor.shape)
        sorted_t = small_tensor.sorted_by_mode(mode)
        out = np.zeros((small_tensor.shape[mode], 6))
        mttkrp_sorted_segments(
            sorted_t.indices, sorted_t.values, factors, mode, out
        )
        ref = mttkrp_coo_reference(small_tensor, factors, mode)
        assert np.allclose(out, ref)

    def test_rejects_unsorted(self, small_tensor, make_factors):
        factors = make_factors(small_tensor.shape)
        out = np.zeros((small_tensor.shape[0], 6))
        # mode-0 keys of an unsorted tensor are (almost surely) unsorted
        sorted_by_other = small_tensor.sorted_by_mode(1)
        if np.any(np.diff(sorted_by_other.indices[:, 0]) < 0):
            with pytest.raises(TensorFormatError, match="not sorted"):
                mttkrp_sorted_segments(
                    sorted_by_other.indices,
                    sorted_by_other.values,
                    factors,
                    0,
                    out,
                )

    def test_accumulates_into_out(self, small_tensor, make_factors):
        factors = make_factors(small_tensor.shape)
        sorted_t = small_tensor.sorted_by_mode(0)
        out = np.zeros((small_tensor.shape[0], 6))
        mttkrp_sorted_segments(sorted_t.indices, sorted_t.values, factors, 0, out)
        once = out.copy()
        mttkrp_sorted_segments(sorted_t.indices, sorted_t.values, factors, 0, out)
        assert np.allclose(out, 2 * once)

    def test_empty_batch_is_noop(self, make_factors):
        factors = make_factors((4, 5, 6))
        out = np.zeros((4, 6))
        mttkrp_sorted_segments(
            np.empty((0, 3), dtype=np.int64), np.empty(0), factors, 0, out
        )
        assert np.all(out == 0)

    def test_assume_sorted_fast_path_same_bits(self, small_tensor, make_factors):
        """``assume_sorted=True`` must change only the cost, not the bits."""
        factors = make_factors(small_tensor.shape)
        sorted_t = small_tensor.sorted_by_mode(1)
        checked = np.zeros((small_tensor.shape[1], 6))
        unchecked = np.zeros_like(checked)
        mttkrp_sorted_segments(
            sorted_t.indices, sorted_t.values, factors, 1, checked
        )
        mttkrp_sorted_segments(
            sorted_t.indices, sorted_t.values, factors, 1, unchecked,
            assume_sorted=True,
        )
        assert np.array_equal(checked, unchecked)

    def test_default_still_rejects_unsorted(self, small_tensor, make_factors):
        """Regression guard for the fast path: the default entry point must
        keep scanning — external callers rely on the check."""
        factors = make_factors(small_tensor.shape)
        out = np.zeros((small_tensor.shape[0], 6))
        sorted_by_other = small_tensor.sorted_by_mode(1)
        assert np.any(np.diff(sorted_by_other.indices[:, 0]) < 0)
        with pytest.raises(TensorFormatError, match="not sorted"):
            mttkrp_sorted_segments(
                sorted_by_other.indices, sorted_by_other.values, factors, 0, out
            )
