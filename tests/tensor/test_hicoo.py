"""Tests for the HiCOO blocked format."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.formats.hicoo import HiCOOTensor
from repro.tensor.reference import mttkrp_coo_reference


class TestConstruction:
    @pytest.mark.parametrize("block_bits", [1, 3, 7])
    def test_roundtrip(self, small_tensor, block_bits):
        h = HiCOOTensor.from_coo(small_tensor, block_bits=block_bits)
        assert h.to_coo().allclose(small_tensor)

    def test_offsets_within_block(self, skewed_tensor):
        h = HiCOOTensor.from_coo(skewed_tensor, block_bits=3)
        assert (h.element_offsets < 8).all()

    def test_block_count_decreases_with_bigger_blocks(self, skewed_tensor):
        fine = HiCOOTensor.from_coo(skewed_tensor, block_bits=1)
        coarse = HiCOOTensor.from_coo(skewed_tensor, block_bits=5)
        assert coarse.n_blocks <= fine.n_blocks

    def test_blocks_are_distinct(self, small_tensor):
        h = HiCOOTensor.from_coo(small_tensor, block_bits=2)
        rows = {tuple(b) for b in h.block_index.tolist()}
        assert len(rows) == h.n_blocks

    def test_invalid_block_bits(self, small_tensor):
        with pytest.raises(TensorFormatError):
            HiCOOTensor.from_coo(small_tensor, block_bits=0)
        with pytest.raises(TensorFormatError):
            HiCOOTensor.from_coo(small_tensor, block_bits=17)

    def test_empty_tensor(self):
        from repro.tensor.coo import SparseTensorCOO

        t = SparseTensorCOO(np.empty((0, 2), dtype=np.int64), np.empty(0), (8, 8))
        h = HiCOOTensor.from_coo(t)
        assert h.n_blocks == 0
        assert h.to_coo().nnz == 0

    def test_compression_beats_coo_on_clustered_data(self):
        """Dense-ish local clusters compress well under HiCOO."""
        from repro.tensor.coo import SparseTensorCOO

        # all elements inside one 16^3 block
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 16, size=(500, 3)).astype(np.int64)
        t = SparseTensorCOO(idx, rng.random(500), (1024, 1024, 1024)).deduplicated()
        h = HiCOOTensor.from_coo(t, block_bits=4)
        assert h.compression_ratio() > 1.5


class TestMTTKRP:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_reference(self, small_tensor, make_factors, mode):
        h = HiCOOTensor.from_coo(small_tensor, block_bits=2)
        factors = make_factors(small_tensor.shape)
        got = h.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(small_tensor, factors, mode))

    def test_four_mode(self, four_mode_tensor, make_factors):
        h = HiCOOTensor.from_coo(four_mode_tensor, block_bits=2)
        factors = make_factors(four_mode_tensor.shape, rank=3)
        for mode in range(4):
            got = h.mttkrp(factors, mode)
            ref = mttkrp_coo_reference(four_mode_tensor, factors, mode)
            assert np.allclose(got, ref)

    def test_empty(self, make_factors):
        from repro.tensor.coo import SparseTensorCOO

        t = SparseTensorCOO(np.empty((0, 3), dtype=np.int64), np.empty(0), (4, 4, 4))
        h = HiCOOTensor.from_coo(t)
        assert np.all(h.mttkrp(make_factors(t.shape), 0) == 0)
