"""Tests for the FLYCOO shard-ordered format."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.formats.flycoo import FlyCOOTensor
from repro.tensor.reference import mttkrp_coo_reference


class TestConstruction:
    def test_roundtrip(self, small_tensor):
        f = FlyCOOTensor.from_coo(small_tensor, 0)
        assert f.to_coo().allclose(small_tensor)

    def test_shard_ids_sorted(self, skewed_tensor):
        f = FlyCOOTensor.from_coo(skewed_tensor, 1, n_shards=7)
        ids = f.shard_ids.astype(np.int64)
        assert (ids[1:] >= ids[:-1]).all()
        assert ids.max() < 7

    def test_shard_slices_cover_all(self, skewed_tensor):
        f = FlyCOOTensor.from_coo(skewed_tensor, 0, n_shards=5)
        total = sum(sl.stop - sl.start for sl in f.shard_slices())
        assert total == f.nnz

    def test_shard_of_index_range_mapping(self):
        shards = FlyCOOTensor.shard_of_index(
            np.array([0, 9, 10, 19, 99]), extent=100, n_shards=10
        )
        assert shards.tolist() == [0, 0, 1, 1, 9]

    def test_remapped_changes_active_mode(self, small_tensor):
        f = FlyCOOTensor.from_coo(small_tensor, 0)
        g = f.remapped(2)
        assert g.active_mode == 2
        keys = g.tensor.indices[:, 2]
        assert (keys[1:] >= keys[:-1]).all()

    def test_device_bytes_counts_two_copies(self, small_tensor):
        f = FlyCOOTensor.from_coo(small_tensor, 0)
        single = f.device_bytes(copies=1)
        assert f.device_bytes() == 2 * single

    def test_bad_mode(self, small_tensor):
        with pytest.raises(TensorFormatError):
            FlyCOOTensor.from_coo(small_tensor, 5)


class TestMTTKRP:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_reference(self, small_tensor, make_factors, mode):
        f = FlyCOOTensor.from_coo(small_tensor, mode)
        factors = make_factors(small_tensor.shape)
        got = f.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(small_tensor, factors, mode))

    def test_wrong_mode_requires_remap(self, small_tensor, make_factors):
        f = FlyCOOTensor.from_coo(small_tensor, 0)
        with pytest.raises(TensorFormatError, match="remap"):
            f.mttkrp(make_factors(small_tensor.shape), 1)

    def test_remap_chain_all_modes(self, skewed_tensor, make_factors):
        factors = make_factors(skewed_tensor.shape)
        current = FlyCOOTensor.from_coo(skewed_tensor, 0)
        for mode in range(3):
            if current.active_mode != mode:
                current = current.remapped(mode)
            got = current.mttkrp(factors, mode)
            ref = mttkrp_coo_reference(skewed_tensor, factors, mode)
            assert np.allclose(got, ref)
