"""Tests for the Khatri-Rao product."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.khatri_rao import khatri_rao


class TestKhatriRao:
    def test_two_matrix_shape(self):
        a = np.random.default_rng(0).random((3, 4))
        b = np.random.default_rng(1).random((5, 4))
        assert khatri_rao([a, b]).shape == (15, 4)

    def test_first_matrix_fastest_ordering(self):
        a = np.array([[1.0], [2.0]])  # I=2
        b = np.array([[10.0], [100.0]])  # J=2
        kr = khatri_rao([a, b])
        # row = i + j * I
        assert kr[0, 0] == 1 * 10
        assert kr[1, 0] == 2 * 10
        assert kr[2, 0] == 1 * 100
        assert kr[3, 0] == 2 * 100

    def test_single_matrix_identity(self):
        a = np.random.default_rng(2).random((4, 3))
        assert np.allclose(khatri_rao([a]), a)

    def test_three_matrices_associative_grouping(self):
        rng = np.random.default_rng(3)
        mats = [rng.random((n, 2)) for n in (2, 3, 4)]
        full = khatri_rao(mats)
        grouped = khatri_rao([khatri_rao(mats[:2]), mats[2]])
        assert np.allclose(full, grouped)

    def test_columnwise_kron_identity(self):
        rng = np.random.default_rng(4)
        a, b = rng.random((3, 2)), rng.random((4, 2))
        kr = khatri_rao([a, b])
        for r in range(2):
            # first-fastest convention: kron(b_col, a_col)
            assert np.allclose(kr[:, r], np.kron(b[:, r], a[:, r]))

    def test_rank_mismatch_raises(self):
        with pytest.raises(TensorFormatError, match="rank"):
            khatri_rao([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_empty_sequence_raises(self):
        with pytest.raises(TensorFormatError):
            khatri_rao([])

    def test_non_matrix_raises(self):
        with pytest.raises(TensorFormatError):
            khatri_rao([np.zeros(3)])
