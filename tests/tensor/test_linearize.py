"""Tests for the linearized-coordinate codec (BLCO substrate)."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.formats.linearize import LinearIndexCodec


class TestBits:
    def test_bits_for_extents(self):
        codec = LinearIndexCodec((2, 3, 1024, 1025))
        assert codec.bits == (1, 2, 10, 11)
        assert codec.total_bits == 24

    def test_extent_one_gets_one_bit(self):
        assert LinearIndexCodec((1,)).bits == (1,)

    def test_shifts_cumulative(self):
        codec = LinearIndexCodec((4, 8, 16))
        assert codec.shifts == (0, 2, 5)


class TestRoundTrip:
    @pytest.mark.parametrize("word_bits", [8, 16, 63])
    def test_encode_decode(self, word_bits):
        rng = np.random.default_rng(0)
        shape = (100, 2000, 37)
        idx = np.column_stack([rng.integers(0, s, 500) for s in shape]).astype(np.int64)
        codec = LinearIndexCodec(shape)
        block, offset, obits = codec.encode_blocked(idx, word_bits=word_bits)
        assert obits <= word_bits
        back = codec.decode_blocked(block, offset, obits)
        assert np.array_equal(back, idx)

    def test_huge_extents_forced_split(self):
        # 3 x 30 bits = 90 bits total: must straddle into the block id.
        shape = (2**30, 2**30, 2**30)
        rng = np.random.default_rng(1)
        idx = np.column_stack([rng.integers(0, s, 200) for s in shape]).astype(np.int64)
        codec = LinearIndexCodec(shape)
        block, offset, obits = codec.encode_blocked(idx)
        assert obits == 63
        assert (block != 0).any()  # overflow really happened
        assert np.array_equal(codec.decode_blocked(block, offset, obits), idx)

    def test_small_shape_single_block(self):
        codec = LinearIndexCodec((16, 16))
        idx = np.array([[3, 5], [15, 15], [0, 0]], dtype=np.int64)
        block, offset, obits = codec.encode_blocked(idx)
        assert (block == 0).all()

    def test_extract_single_mode(self):
        shape = (2**25, 2**25, 2**25)
        rng = np.random.default_rng(2)
        idx = np.column_stack([rng.integers(0, s, 300) for s in shape]).astype(np.int64)
        codec = LinearIndexCodec(shape)
        block, offset, obits = codec.encode_blocked(idx)
        for m in range(3):
            got = codec.extract_mode_from_blocked(block, offset, obits, m)
            assert np.array_equal(got, idx[:, m])

    def test_keys_unique_for_unique_coords(self):
        shape = (50, 60)
        coords = np.argwhere(np.ones(shape, dtype=bool)).astype(np.int64)
        codec = LinearIndexCodec(shape)
        block, offset, obits = codec.encode_blocked(coords)
        keys = set(zip(block.tolist(), offset.tolist()))
        assert len(keys) == coords.shape[0]


class TestErrors:
    def test_bad_word_bits(self):
        codec = LinearIndexCodec((4, 4))
        with pytest.raises(TensorFormatError):
            codec.encode_blocked(np.zeros((1, 2), dtype=np.int64), word_bits=64)

    def test_wrong_index_width(self):
        codec = LinearIndexCodec((4, 4))
        with pytest.raises(TensorFormatError):
            codec.encode_blocked(np.zeros((1, 3), dtype=np.int64))

    def test_mode_out_of_range(self):
        codec = LinearIndexCodec((4, 4))
        with pytest.raises(TensorFormatError):
            codec.extract_mode_from_blocked(
                np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64), 4, 2
            )
