"""Tests for tensor structural diagnostics."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.coo import SparseTensorCOO
from repro.tensor.validate import diagnose, require_canonical


class TestDiagnose:
    def test_clean_tensor(self, small_tensor):
        d = diagnose(small_tensor)
        assert d.canonical
        assert d.duplicate_coordinates == 0
        assert d.explicit_zeros == 0
        assert not d.degenerate_modes

    def test_duplicates_detected(self):
        t = SparseTensorCOO(
            np.array([[0, 0], [0, 0], [1, 1]]), np.array([1.0, 2.0, 3.0]), (2, 2)
        )
        d = diagnose(t)
        assert d.duplicate_coordinates == 1
        assert not d.canonical
        assert "duplicate" in d.summary()

    def test_explicit_zeros_detected(self):
        t = SparseTensorCOO(np.array([[0, 0], [1, 1]]), np.array([0.0, 2.0]), (2, 2))
        d = diagnose(t)
        assert d.explicit_zeros == 1
        assert not d.canonical

    def test_empty_slices_counted(self):
        t = SparseTensorCOO(np.array([[0, 0]]), np.array([1.0]), (5, 2))
        d = diagnose(t)
        assert d.empty_slices[0] == 4  # indices 1..4 of mode 0 unused
        assert d.empty_slices[1] == 1

    def test_degenerate_modes(self):
        t = SparseTensorCOO(np.array([[0, 0, 2]]), np.array([1.0]), (1, 1, 3))
        assert diagnose(t).degenerate_modes == (0, 1)

    def test_sortedness_flags(self, small_tensor):
        s = small_tensor.sorted_by_mode(1)
        d = diagnose(s)
        assert d.sorted_by_mode[1]

    def test_empty_tensor(self):
        t = SparseTensorCOO(np.empty((0, 2), dtype=np.int64), np.empty(0), (3, 3))
        d = diagnose(t)
        assert d.canonical
        assert all(d.sorted_by_mode)


class TestRequireCanonical:
    def test_passthrough_when_clean(self, small_tensor):
        assert require_canonical(small_tensor) is small_tensor

    def test_raises_with_diagnostics(self):
        t = SparseTensorCOO(
            np.array([[0, 0], [0, 0]]), np.array([1.0, 1.0]), (2, 2)
        )
        with pytest.raises(TensorFormatError, match="duplicate"):
            require_canonical(t)
