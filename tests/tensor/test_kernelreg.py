"""Tests for the kernel registry: dispatch, fallback, and tier equivalence.

The registry contract: ``numpy`` is always available and bit-identical to
the reference pipeline; compiled tiers (``numba``, ``cc``) are probed
lazily, fall back to numpy gracefully when their toolchain is missing or
disabled, and — when available — reproduce the reference within the
documented fused tolerance (:data:`FUSED_RTOL`/:data:`FUSED_ATOL`, per-
segment sequential accumulation vs ``np.add.reduceat``'s internal
association tree).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.kernelreg import (
    AUTO_KERNEL,
    CC_CACHE_ENV,
    FUSED_ATOL,
    FUSED_RTOL,
    KERNEL_DISABLE_ENV,
    KERNEL_NAMES,
    KERNEL_PREFERENCE,
    available_kernels,
    get_kernel,
    kernel_availability,
    refresh_kernel_registry,
    resolve_kernel_name,
    validate_kernel_name,
)


@pytest.fixture
def registry_guard():
    """Re-probe the registry after a test that toggles its environment."""
    refresh_kernel_registry()
    yield
    refresh_kernel_registry()


def _sorted_batch(seed=0, shape=(13, 9, 11), nnz=200, rank=5, mode=0):
    rng = np.random.default_rng(seed)
    indices = np.stack(
        [rng.integers(0, s, nnz) for s in shape], axis=1
    ).astype(np.int64)
    indices = indices[np.argsort(indices[:, mode], kind="stable")]
    values = rng.random(nnz)
    factors = [rng.random((s, rank)) for s in shape]
    return indices, values, factors


class TestRegistryDispatch:
    def test_numpy_always_available_and_bit_identical(self):
        assert "numpy" in available_kernels()
        spec = get_kernel("numpy")
        assert spec.name == "numpy" and spec.bit_identical

    def test_validate_kernel_name_domain(self):
        for name in KERNEL_NAMES + (AUTO_KERNEL,):
            assert validate_kernel_name(name) == name
        with pytest.raises(TensorFormatError, match="kernel must be one of"):
            validate_kernel_name("fortran")
        with pytest.raises(TensorFormatError):
            validate_kernel_name(None)
        with pytest.raises(TensorFormatError):
            validate_kernel_name("auto", allow_auto=False)

    def test_availability_covers_every_tier(self):
        avail = kernel_availability()
        assert set(avail) == set(KERNEL_NAMES)
        assert avail["numpy"] is None
        for name, reason in avail.items():
            assert reason is None or isinstance(reason, str)

    def test_auto_resolves_to_preferred_available(self):
        resolved = resolve_kernel_name(AUTO_KERNEL)
        avail = available_kernels()
        assert resolved in avail
        # first available tier in preference order wins
        assert resolved == next(k for k in KERNEL_PREFERENCE if k in avail)

    def test_explicit_available_tier_resolves_to_itself(self):
        for name in available_kernels():
            assert resolve_kernel_name(name) == name
            assert get_kernel(name).name == name

    def test_bad_name_raises_not_falls_back(self):
        with pytest.raises(TensorFormatError):
            resolve_kernel_name("simd")
        with pytest.raises(TensorFormatError):
            get_kernel("simd")


class TestDisableAndFallback:
    def test_disable_env_forces_numpy(self, monkeypatch, registry_guard):
        monkeypatch.setenv(KERNEL_DISABLE_ENV, "numba,cc")
        refresh_kernel_registry()
        assert available_kernels() == ("numpy",)
        assert resolve_kernel_name(AUTO_KERNEL) == "numpy"
        # explicit-but-unavailable tiers degrade, with the reason queryable
        assert resolve_kernel_name("cc") == "numpy"
        assert resolve_kernel_name("numba") == "numpy"
        assert get_kernel("cc").name == "numpy"
        avail = kernel_availability()
        assert KERNEL_DISABLE_ENV in avail["cc"]
        assert KERNEL_DISABLE_ENV in avail["numba"]

    def test_partial_disable_keeps_other_tiers(self, monkeypatch, registry_guard):
        monkeypatch.setenv(KERNEL_DISABLE_ENV, "numba")
        refresh_kernel_registry()
        assert "numba" not in available_kernels()
        assert "numpy" in available_kernels()

    def test_refresh_reprobes(self, monkeypatch, registry_guard):
        monkeypatch.setenv(KERNEL_DISABLE_ENV, "numba,cc")
        refresh_kernel_registry()
        assert available_kernels() == ("numpy",)
        monkeypatch.delenv(KERNEL_DISABLE_ENV)
        refresh_kernel_registry()
        assert set(available_kernels()) >= {"numpy"}

    def test_missing_dependency_reason_is_recorded(self):
        """Any unavailable tier must say why (exception type + message)."""
        for name, reason in kernel_availability().items():
            if reason is not None:
                assert ":" in reason or KERNEL_DISABLE_ENV in reason

    @pytest.mark.skipif(
        "cc" not in available_kernels(),
        reason="no C toolchain on this host",
    )
    def test_cc_cache_dir_override_compiles_fresh(
        self, tmp_path, monkeypatch, registry_guard
    ):
        monkeypatch.setenv(CC_CACHE_ENV, str(tmp_path))
        refresh_kernel_registry()
        assert "cc" in available_kernels()
        assert list(tmp_path.glob("mttkrp_fused_*.so"))


class TestTierEquivalence:
    """Every available tier agrees with the reference on random batches:
    bit-identical tiers exactly, fused tiers at the documented tolerance."""

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_reduce_matches_reference(self, name, mode):
        if name not in available_kernels():
            pytest.skip(f"{name} unavailable: {kernel_availability()[name]}")
        indices, values, factors = _sorted_batch(seed=mode, mode=mode)
        ref_rows, ref_partial = get_kernel("numpy").reduce_batch(
            indices, values, factors, mode
        )
        spec = get_kernel(name)
        rows, partial = spec.reduce_batch(indices, values, factors, mode)
        assert np.array_equal(rows, ref_rows)
        if spec.bit_identical:
            assert np.array_equal(partial, ref_partial)
        else:
            assert np.allclose(
                partial, ref_partial, rtol=FUSED_RTOL, atol=FUSED_ATOL
            )

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_scatter_matches_reference(self, name, mode):
        if name not in available_kernels():
            pytest.skip(f"{name} unavailable: {kernel_availability()[name]}")
        indices, values, factors = _sorted_batch(seed=10 + mode)
        spec = get_kernel(name)
        out = np.zeros((factors[mode].shape[0], factors[0].shape[1]))
        ref = np.zeros_like(out)
        get_kernel("numpy").scatter_batch(ref, indices, values, factors, mode)
        spec.scatter_batch(out, indices, values, factors, mode)
        if spec.bit_identical:
            assert np.array_equal(out, ref)
        else:
            assert np.allclose(out, ref, rtol=FUSED_RTOL, atol=FUSED_ATOL)

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_tier_is_deterministic_across_calls(self, name):
        """The tolerance tier promises the *same bits on every call* (stable
        association order), even where it differs from numpy's."""
        if name not in available_kernels():
            pytest.skip(f"{name} unavailable")
        indices, values, factors = _sorted_batch(seed=3)
        spec = get_kernel(name)
        _, first = spec.reduce_batch(indices, values, factors, 0)
        for _ in range(3):
            _, again = spec.reduce_batch(indices, values, factors, 0)
            assert np.array_equal(first, again)

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_empty_batch(self, name):
        if name not in available_kernels():
            pytest.skip(f"{name} unavailable")
        spec = get_kernel(name)
        factors = [np.ones((4, 3)), np.ones((5, 3)), np.ones((6, 3))]
        rows, partial = spec.reduce_batch(
            np.empty((0, 3), dtype=np.int64), np.empty(0), factors, 0
        )
        assert rows.size == 0 and partial.shape == (0, 3)
        out = np.zeros((4, 3))
        spec.scatter_batch(
            out, np.empty((0, 3), dtype=np.int64), np.empty(0), factors, 0
        )
        assert np.all(out == 0)

    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_four_mode_batch(self, name):
        if name not in available_kernels():
            pytest.skip(f"{name} unavailable")
        indices, values, factors = _sorted_batch(
            seed=4, shape=(6, 5, 7, 4), nnz=120, rank=3, mode=2
        )
        ref_rows, ref_partial = get_kernel("numpy").reduce_batch(
            indices, values, factors, 2
        )
        rows, partial = get_kernel(name).reduce_batch(
            indices, values, factors, 2
        )
        assert np.array_equal(rows, ref_rows)
        assert np.allclose(partial, ref_partial, rtol=FUSED_RTOL, atol=FUSED_ATOL)


FUSED_TIERS = [n for n in KERNEL_NAMES if n != "numpy"]


class TestFusedPreconditions:
    """A compiled tier dereferences raw pointers — malformed operands must
    die as named :class:`TensorFormatError`\\ s before the kernel runs."""

    def _spec(self, name):
        if name not in available_kernels():
            pytest.skip(f"{name} unavailable")
        return get_kernel(name)

    @pytest.mark.parametrize("name", FUSED_TIERS)
    def test_out_of_range_index_rejected(self, name):
        spec = self._spec(name)
        indices, values, factors = _sorted_batch(nnz=20)
        indices[7, 1] = factors[1].shape[0]  # one past the extent
        with pytest.raises(TensorFormatError, match="outside factor extent"):
            spec.reduce_batch(indices, values, factors, 0)

    @pytest.mark.parametrize("name", FUSED_TIERS)
    def test_negative_index_rejected(self, name):
        spec = self._spec(name)
        indices, values, factors = _sorted_batch(nnz=20)
        indices[3, 2] = -1
        with pytest.raises(TensorFormatError, match="outside factor extent"):
            spec.reduce_batch(indices, values, factors, 0)

    @pytest.mark.parametrize("name", FUSED_TIERS)
    def test_empty_factors_rejected(self, name):
        spec = self._spec(name)
        with pytest.raises(TensorFormatError, match="non-empty"):
            spec.reduce_batch(
                np.empty((0, 0), dtype=np.int64), np.empty(0), [], 0
            )

    @pytest.mark.parametrize("name", FUSED_TIERS)
    def test_mismatched_rank_rejected(self, name):
        spec = self._spec(name)
        indices, values, factors = _sorted_batch(nnz=20)
        factors[1] = factors[1][:, :-1]  # rank 4 among rank-5 factors
        with pytest.raises(TensorFormatError, match="factor 1"):
            spec.reduce_batch(indices, values, factors, 0)

    @pytest.mark.parametrize("name", FUSED_TIERS)
    def test_scatter_out_too_small_rejected(self, name):
        spec = self._spec(name)
        indices, values, factors = _sorted_batch(nnz=20)
        out = np.zeros((2, factors[0].shape[1]))  # rows exceed 2
        with pytest.raises(TensorFormatError, match="out of range|outside"):
            spec.scatter_batch(out, indices, values, factors, 0)

    @pytest.mark.parametrize("name", FUSED_TIERS)
    def test_scatter_non_contiguous_out_rejected(self, name):
        spec = self._spec(name)
        indices, values, factors = _sorted_batch(nnz=20)
        rank = factors[0].shape[1]
        wide = np.zeros((factors[0].shape[0], 2 * rank))
        with pytest.raises(TensorFormatError, match="C-contiguous"):
            spec.scatter_batch(wide[:, ::2], indices, values, factors, 0)
