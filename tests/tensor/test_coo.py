"""Unit tests for SparseTensorCOO."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.coo import SparseTensorCOO


class TestConstruction:
    def test_basic_properties(self, tiny_tensor):
        assert tiny_tensor.nnz == 6
        assert tiny_tensor.nmodes == 3
        assert tiny_tensor.shape == (4, 3, 4)
        assert tiny_tensor.nbytes == 6 * 3 * 8 + 6 * 8

    def test_density(self, tiny_tensor):
        assert tiny_tensor.density == pytest.approx(6 / (4 * 3 * 4))

    def test_empty_tensor(self):
        t = SparseTensorCOO(
            np.empty((0, 2), dtype=np.int64), np.empty(0), (5, 5)
        )
        assert t.nnz == 0
        assert t.norm() == 0.0

    def test_rejects_index_out_of_range(self):
        with pytest.raises(TensorFormatError, match="out of range"):
            SparseTensorCOO(np.array([[5, 0]]), np.array([1.0]), (5, 5))

    def test_rejects_negative_index(self):
        with pytest.raises(TensorFormatError, match="negative"):
            SparseTensorCOO(np.array([[-1, 0]]), np.array([1.0]), (5, 5))

    def test_rejects_shape_mode_mismatch(self):
        with pytest.raises(TensorFormatError, match="modes"):
            SparseTensorCOO(np.array([[0, 0]]), np.array([1.0]), (5, 5, 5))

    def test_rejects_misaligned_values(self):
        with pytest.raises(TensorFormatError, match="values"):
            SparseTensorCOO(np.array([[0, 0]]), np.array([1.0, 2.0]), (5, 5))

    def test_rejects_zero_extent(self):
        with pytest.raises(TensorFormatError, match="positive"):
            SparseTensorCOO(np.empty((0, 1), dtype=np.int64), np.empty(0), (0,))

    def test_integer_values_cast_to_float(self):
        t = SparseTensorCOO(np.array([[0, 0]]), np.array([3]), (2, 2))
        assert np.issubdtype(t.values.dtype, np.floating)

    def test_norm(self, tiny_tensor):
        expected = np.sqrt(np.sum(tiny_tensor.values**2))
        assert tiny_tensor.norm() == pytest.approx(expected)


class TestTransformations:
    def test_sorted_by_mode_orders_keys(self, small_tensor):
        for mode in range(3):
            s = small_tensor.sorted_by_mode(mode)
            keys = s.indices[:, mode]
            assert (keys[1:] >= keys[:-1]).all()
            assert s.nnz == small_tensor.nnz

    def test_sorted_by_mode_preserves_content(self, small_tensor):
        s = small_tensor.sorted_by_mode(1)
        assert s.allclose(small_tensor)

    def test_sorted_lexicographic(self, small_tensor):
        s = small_tensor.sorted_lexicographic([2, 0, 1])
        keys = s.indices[:, [2, 0, 1]]
        # verify non-decreasing lexicographic order
        for i in range(1, keys.shape[0]):
            assert tuple(keys[i - 1]) <= tuple(keys[i])

    def test_lexicographic_rejects_bad_order(self, small_tensor):
        with pytest.raises(TensorFormatError):
            small_tensor.sorted_lexicographic([0, 0, 1])

    def test_permuted_modes_roundtrip(self, small_tensor):
        p = small_tensor.permuted_modes([2, 0, 1])
        back = p.permuted_modes([1, 2, 0])
        assert back.allclose(small_tensor)
        assert p.shape == (10, 15, 12)

    def test_select_mask(self, small_tensor):
        mask = small_tensor.values > np.median(small_tensor.values)
        sub = small_tensor.select(mask)
        assert sub.nnz == int(mask.sum())

    def test_deduplicated_sums_values(self):
        idx = np.array([[1, 1], [1, 1], [0, 0]])
        t = SparseTensorCOO(idx, np.array([1.0, 2.0, 5.0]), (3, 3))
        d = t.deduplicated()
        assert d.nnz == 2
        dense = d.to_dense()
        assert dense[1, 1] == pytest.approx(3.0)
        assert dense[0, 0] == pytest.approx(5.0)

    def test_deduplicated_idempotent(self, small_tensor):
        d1 = small_tensor.deduplicated()
        d2 = d1.deduplicated()
        assert d1.nnz == d2.nnz

    def test_concatenated(self, tiny_tensor):
        c = tiny_tensor.concatenated(tiny_tensor)
        assert c.nnz == 2 * tiny_tensor.nnz
        # summing duplicates should double every value
        assert np.allclose(c.to_dense(), 2 * tiny_tensor.to_dense())

    def test_concatenated_shape_mismatch(self, tiny_tensor, small_tensor):
        with pytest.raises(TensorFormatError):
            tiny_tensor.concatenated(small_tensor)

    def test_astype(self, tiny_tensor):
        t32 = tiny_tensor.astype(np.float32)
        assert t32.values.dtype == np.float32


class TestDenseInterop:
    def test_dense_roundtrip(self, tiny_tensor):
        back = SparseTensorCOO.from_dense(tiny_tensor.to_dense())
        assert back.allclose(tiny_tensor)

    def test_from_dense_drops_zeros(self):
        arr = np.zeros((3, 3))
        arr[1, 2] = 4.0
        t = SparseTensorCOO.from_dense(arr)
        assert t.nnz == 1

    def test_to_dense_refuses_huge(self):
        t = SparseTensorCOO(
            np.array([[0, 0, 0]]), np.array([1.0]), (10_000, 10_000, 10_000)
        )
        with pytest.raises(TensorFormatError, match="refusing"):
            t.to_dense()

    def test_allclose_detects_value_difference(self, tiny_tensor):
        other = SparseTensorCOO(
            tiny_tensor.indices, tiny_tensor.values * 1.5, tiny_tensor.shape
        )
        assert not tiny_tensor.allclose(other)

    def test_allclose_order_invariant(self, small_tensor):
        shuffled = small_tensor.select(
            np.random.default_rng(0).permutation(small_tensor.nnz)
        )
        assert shuffled.allclose(small_tensor)
