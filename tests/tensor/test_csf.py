"""Tests for the CSF format and its tree-native MTTKRP."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.formats.csf import CSFTensor
from repro.tensor.reference import mttkrp_coo_reference


class TestConstruction:
    def test_roundtrip_default_order(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        assert csf.to_coo().allclose(small_tensor)

    @pytest.mark.parametrize("order", [(0, 1, 2), (1, 2, 0), (2, 0, 1), (2, 1, 0)])
    def test_roundtrip_all_orders(self, small_tensor, order):
        csf = CSFTensor.from_coo(small_tensor, order)
        assert csf.to_coo().allclose(small_tensor)

    def test_roundtrip_four_modes(self, four_mode_tensor):
        csf = CSFTensor.from_coo(four_mode_tensor, (3, 1, 0, 2))
        assert csf.to_coo().allclose(four_mode_tensor)

    def test_level_sizes_monotone(self, small_tensor):
        """Node counts grow (weakly) from root toward the leaves."""
        csf = CSFTensor.from_coo(small_tensor)
        counts = [csf.nodes_at_level(L) for L in range(csf.nmodes)]
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == small_tensor.nnz

    def test_root_level_has_distinct_indices(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor, (1, 0, 2))
        roots = csf.fids[0]
        assert len(np.unique(roots)) == len(roots)

    def test_fptr_covers_children(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        for L in range(csf.nmodes - 1):
            ptr = csf.fptr[L]
            assert ptr[0] == 0
            assert ptr[-1] == csf.nodes_at_level(L + 1)
            assert (np.diff(ptr) >= 1).all()  # CSF from sorted data: no empties

    def test_bad_mode_order(self, small_tensor):
        with pytest.raises(TensorFormatError):
            CSFTensor.from_coo(small_tensor, (0, 0, 1))

    def test_empty_tensor(self):
        from repro.tensor.coo import SparseTensorCOO

        t = SparseTensorCOO(np.empty((0, 3), dtype=np.int64), np.empty(0), (3, 3, 3))
        csf = CSFTensor.from_coo(t)
        assert csf.nnz == 0
        assert csf.to_coo().nnz == 0

    def test_duplicate_coordinates_canonicalized(self):
        """Duplicates sum into one leaf (CSF stores the canonical tensor)."""
        from repro.tensor.coo import SparseTensorCOO

        idx = np.array([[1, 2, 3], [1, 2, 3], [0, 0, 0]])
        t = SparseTensorCOO(idx, np.array([1.0, 2.5, 4.0]), (4, 4, 4))
        csf = CSFTensor.from_coo(t)
        assert csf.nnz == 2
        assert csf.to_coo().allclose(t)  # allclose canonicalizes both sides

    def test_device_bytes_positive_and_ordered(self, small_tensor):
        csf = CSFTensor.from_coo(small_tensor)
        assert csf.device_bytes() > 0
        # COO at the same widths is at least as large as CSF's compressed tree
        coo_bytes = small_tensor.nnz * (3 * 4 + 4)
        assert csf.device_bytes() <= coo_bytes * 2  # sanity band


class TestTreeMTTKRP:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_reference_root_order(self, small_tensor, make_factors, mode):
        """CSF rooted at the output mode (MM-CSF's configuration)."""
        factors = make_factors(small_tensor.shape)
        order = [mode] + [m for m in range(3) if m != mode]
        csf = CSFTensor.from_coo(small_tensor, order)
        got = csf.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(small_tensor, factors, mode))

    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("order", [(0, 1, 2), (1, 2, 0), (2, 1, 0)])
    def test_matches_reference_any_position(
        self, small_tensor, make_factors, mode, order
    ):
        """Output mode at root, middle, or leaf of the tree all work."""
        factors = make_factors(small_tensor.shape)
        csf = CSFTensor.from_coo(small_tensor, order)
        got = csf.mttkrp(factors, mode)
        assert np.allclose(got, mttkrp_coo_reference(small_tensor, factors, mode))

    def test_four_mode_all_positions(self, four_mode_tensor, make_factors):
        factors = make_factors(four_mode_tensor.shape, rank=4)
        csf = CSFTensor.from_coo(four_mode_tensor, (2, 0, 3, 1))
        for mode in range(4):
            got = csf.mttkrp(factors, mode)
            ref = mttkrp_coo_reference(four_mode_tensor, factors, mode)
            assert np.allclose(got, ref)

    def test_skewed_tensor(self, skewed_tensor, make_factors):
        factors = make_factors(skewed_tensor.shape)
        csf = CSFTensor.from_coo(skewed_tensor)
        for mode in range(3):
            got = csf.mttkrp(factors, mode)
            ref = mttkrp_coo_reference(skewed_tensor, factors, mode)
            assert np.allclose(got, ref)

    def test_empty_tensor_zeros(self, make_factors):
        from repro.tensor.coo import SparseTensorCOO

        t = SparseTensorCOO(np.empty((0, 3), dtype=np.int64), np.empty(0), (4, 4, 4))
        csf = CSFTensor.from_coo(t)
        out = csf.mttkrp(make_factors(t.shape), 1)
        assert np.all(out == 0)

    def test_wrong_factor_count(self, small_tensor, make_factors):
        csf = CSFTensor.from_coo(small_tensor)
        with pytest.raises(TensorFormatError):
            csf.mttkrp(make_factors(small_tensor.shape)[:2], 0)
