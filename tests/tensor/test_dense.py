"""Tests for dense unfolding/folding and the column linearization."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.dense import fold, unfold, unfold_columns
from repro.tensor.khatri_rao import khatri_rao


class TestUnfold:
    def test_unfold_shapes(self):
        arr = np.arange(2 * 3 * 4).reshape(2, 3, 4)
        assert unfold(arr, 0).shape == (2, 12)
        assert unfold(arr, 1).shape == (3, 8)
        assert unfold(arr, 2).shape == (4, 6)

    def test_fold_inverts_unfold(self):
        arr = np.random.default_rng(0).random((3, 4, 5))
        for mode in range(3):
            assert np.allclose(fold(unfold(arr, mode), mode, arr.shape), arr)

    def test_fold_rejects_bad_shape(self):
        with pytest.raises(TensorFormatError):
            fold(np.zeros((3, 5)), 0, (3, 4, 5))

    def test_unfold_mode_out_of_range(self):
        with pytest.raises(TensorFormatError):
            unfold(np.zeros((2, 2)), 2)

    def test_unfold_matches_entrywise_definition(self):
        """unfold(X, n)[i_n, col(i_-n)] == X[i] with earlier modes fastest."""
        arr = np.random.default_rng(1).random((3, 4, 2))
        u1 = unfold(arr, 1)
        for i in range(3):
            for j in range(4):
                for k in range(2):
                    col = i + k * 3  # modes 0 then 2, first fastest
                    assert u1[j, col] == arr[i, j, k]


class TestUnfoldColumns:
    def test_matches_dense_unfold(self):
        rng = np.random.default_rng(2)
        shape = (4, 3, 5)
        arr = rng.random(shape)
        coords = np.argwhere(arr > -1)  # every position
        for mode in range(3):
            cols = unfold_columns(coords, shape, mode)
            u = unfold(arr, mode)
            assert np.allclose(u[coords[:, mode], cols], arr[tuple(coords.T)])

    def test_bijective_over_positions(self):
        shape = (3, 4, 5)
        coords = np.argwhere(np.ones(shape, dtype=bool))
        for mode in range(3):
            cols = unfold_columns(coords, shape, mode)
            pairs = set(zip(coords[:, mode].tolist(), cols.tolist()))
            assert len(pairs) == coords.shape[0]

    def test_mode_out_of_range(self):
        with pytest.raises(TensorFormatError):
            unfold_columns(np.zeros((1, 2), dtype=np.int64), (2, 2), 5)


class TestUnfoldKhatriRaoConsistency:
    def test_mttkrp_identity(self):
        """unfold(X,d) @ kr(others) must equal the elementwise definition."""
        rng = np.random.default_rng(3)
        shape = (4, 3, 5)
        arr = rng.random(shape)
        rank = 2
        factors = [rng.random((s, rank)) for s in shape]
        for mode in range(3):
            others = [factors[m] for m in range(3) if m != mode]
            kr = khatri_rao(others)
            got = unfold(arr, mode) @ kr
            # brute force
            want = np.zeros((shape[mode], rank))
            for i in range(shape[0]):
                for j in range(shape[1]):
                    for k in range(shape[2]):
                        idx = (i, j, k)
                        row = idx[mode]
                        prod = arr[idx] * np.ones(rank)
                        for m in range(3):
                            if m != mode:
                                prod = prod * factors[m][idx[m]]
                        want[row] += prod
            assert np.allclose(got, want)
