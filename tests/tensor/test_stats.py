"""Tests for tensor statistics."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.stats import TensorStats, gini_coefficient, mode_histogram


class TestModeHistogram:
    def test_counts_sum_to_nnz(self, small_tensor):
        for mode in range(small_tensor.nmodes):
            h = mode_histogram(small_tensor, mode)
            assert h.sum() == small_tensor.nnz
            assert h.shape[0] == small_tensor.shape[mode]

    def test_manual_counts(self, tiny_tensor):
        h = mode_histogram(tiny_tensor, 0)
        assert h.tolist() == [2, 1, 2, 1]

    def test_mode_out_of_range(self, tiny_tensor):
        with pytest.raises(TensorFormatError):
            mode_histogram(tiny_tensor, 3)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_single_spike_near_one(self):
        counts = np.zeros(1000)
        counts[0] = 1e6
        assert gini_coefficient(counts) > 0.99

    def test_monotone_in_skew(self):
        mild = np.array([5, 4, 6, 5, 5])
        harsh = np.array([1, 1, 1, 1, 21])
        assert gini_coefficient(harsh) > gini_coefficient(mild)

    def test_empty_and_zero(self):
        assert gini_coefficient(np.empty(0)) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1, 2]))


class TestTensorStats:
    def test_compute(self, skewed_tensor):
        stats = TensorStats.compute(skewed_tensor)
        assert stats.nnz == skewed_tensor.nnz
        assert stats.shape == skewed_tensor.shape
        assert len(stats.gini) == 3
        # mode 0 is the most skewed by construction (exponent 1.2)
        assert stats.gini[0] > stats.gini[1]

    def test_skew_ratio_at_least_one(self, small_tensor):
        stats = TensorStats.compute(small_tensor)
        for mode in range(3):
            assert stats.skew(mode) >= 1.0
