"""Tests for synthetic tensor generators."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.generate import lowrank_coo, random_coo, zipf_coo
from repro.tensor.stats import gini_coefficient, mode_histogram


class TestRandomCoo:
    def test_shape_and_bounds(self):
        t = random_coo((10, 20, 5), 300, seed=0)
        assert t.shape == (10, 20, 5)
        assert t.nnz <= 300
        assert (t.indices >= 0).all()
        assert (t.indices.max(axis=0) < np.array(t.shape)).all()

    def test_deterministic_with_seed(self):
        a = random_coo((10, 10), 100, seed=42)
        b = random_coo((10, 10), 100, seed=42)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = random_coo((50, 50), 200, seed=1)
        b = random_coo((50, 50), 200, seed=2)
        assert not a.allclose(b)

    def test_no_dedupe_keeps_exact_count(self):
        t = random_coo((5, 5), 100, seed=0, dedupe=False)
        assert t.nnz == 100

    def test_zero_nnz(self):
        t = random_coo((5, 5), 0, seed=0)
        assert t.nnz == 0

    def test_negative_nnz_raises(self):
        with pytest.raises(TensorFormatError):
            random_coo((5, 5), -1)

    def test_values_nonzero(self):
        t = random_coo((10, 10), 200, seed=0)
        assert (t.values != 0).all()

    def test_value_distributions(self):
        ones = random_coo((10, 10), 50, seed=0, value_dist="ones", dedupe=False)
        assert np.allclose(ones.values, 1.0)
        normal = random_coo((10, 10), 50, seed=0, value_dist="normal", dedupe=False)
        assert normal.values.std() > 0

    def test_unknown_value_dist(self):
        with pytest.raises(TensorFormatError):
            random_coo((5, 5), 10, value_dist="bogus")


class TestZipfCoo:
    def test_skew_increases_gini(self):
        flat = zipf_coo((200, 200), 5000, exponents=0.0, seed=0)
        skewed = zipf_coo((200, 200), 5000, exponents=1.5, seed=0)
        g_flat = gini_coefficient(mode_histogram(flat, 0))
        g_skewed = gini_coefficient(mode_histogram(skewed, 0))
        assert g_skewed > g_flat + 0.2

    def test_per_mode_exponents(self):
        t = zipf_coo((300, 300), 8000, exponents=(0.0, 1.5), seed=0)
        g0 = gini_coefficient(mode_histogram(t, 0))
        g1 = gini_coefficient(mode_histogram(t, 1))
        assert g1 > g0

    def test_exponent_count_mismatch(self):
        with pytest.raises(TensorFormatError):
            zipf_coo((5, 5), 10, exponents=(1.0,))

    def test_deterministic(self):
        a = zipf_coo((50, 40), 500, exponents=1.0, seed=9)
        b = zipf_coo((50, 40), 500, exponents=1.0, seed=9)
        assert a.allclose(b)


class TestLowrankCoo:
    def test_values_follow_model(self):
        t = lowrank_coo((10, 10, 10), 200, rank=3, noise=0.0, seed=0)
        # noiseless low-rank values are positive (non-negative factors)
        assert (t.values > 0).all()

    def test_rank_must_be_positive(self):
        with pytest.raises(TensorFormatError):
            lowrank_coo((5, 5), 10, rank=0)

    def test_noise_changes_values(self):
        a = lowrank_coo((10, 10), 100, rank=2, noise=0.0, seed=1)
        b = lowrank_coo((10, 10), 100, rank=2, noise=0.5, seed=1)
        # same coordinates sampled, different values
        assert a.nnz == b.nnz
        assert not np.allclose(np.sort(a.values), np.sort(b.values))
