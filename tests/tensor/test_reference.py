"""The two reference MTTKRP oracles must agree with each other."""

import numpy as np
import pytest

from repro.errors import TensorFormatError
from repro.tensor.reference import (
    check_factors,
    mttkrp_coo_reference,
    mttkrp_dense_reference,
)


class TestOracleAgreement:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_small_tensor(self, small_tensor, make_factors, mode):
        factors = make_factors(small_tensor.shape)
        a = mttkrp_coo_reference(small_tensor, factors, mode)
        b = mttkrp_dense_reference(small_tensor, factors, mode)
        assert np.allclose(a, b)

    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_four_mode(self, four_mode_tensor, make_factors, mode):
        factors = make_factors(four_mode_tensor.shape)
        a = mttkrp_coo_reference(four_mode_tensor, factors, mode)
        b = mttkrp_dense_reference(four_mode_tensor, factors, mode)
        assert np.allclose(a, b)

    def test_five_mode(self, five_mode_tensor, make_factors):
        factors = make_factors(five_mode_tensor.shape, rank=3)
        for mode in range(5):
            a = mttkrp_coo_reference(five_mode_tensor, factors, mode)
            b = mttkrp_dense_reference(five_mode_tensor, factors, mode)
            assert np.allclose(a, b)

    def test_empty_tensor_gives_zeros(self, make_factors):
        from repro.tensor.coo import SparseTensorCOO

        t = SparseTensorCOO(np.empty((0, 3), dtype=np.int64), np.empty(0), (4, 5, 6))
        factors = make_factors(t.shape)
        out = mttkrp_coo_reference(t, factors, 1)
        assert out.shape == (5, 6)
        assert np.all(out == 0)

    def test_output_shape(self, tiny_tensor, make_factors):
        factors = make_factors(tiny_tensor.shape, rank=4)
        for mode in range(3):
            out = mttkrp_coo_reference(tiny_tensor, factors, mode)
            assert out.shape == (tiny_tensor.shape[mode], 4)

    def test_linearity_in_values(self, small_tensor, make_factors):
        """MTTKRP is linear in the tensor values."""
        from repro.tensor.coo import SparseTensorCOO

        factors = make_factors(small_tensor.shape)
        doubled = SparseTensorCOO(
            small_tensor.indices, 2.0 * small_tensor.values, small_tensor.shape
        )
        a = mttkrp_coo_reference(small_tensor, factors, 0)
        b = mttkrp_coo_reference(doubled, factors, 0)
        assert np.allclose(b, 2.0 * a)


class TestCheckFactors:
    def test_accepts_valid(self, tiny_tensor, make_factors):
        mats = check_factors(tiny_tensor.shape, make_factors(tiny_tensor.shape))
        assert len(mats) == 3

    def test_rejects_wrong_count(self, tiny_tensor, make_factors):
        with pytest.raises(TensorFormatError, match="expected 3"):
            check_factors(tiny_tensor.shape, make_factors(tiny_tensor.shape)[:2])

    def test_rejects_wrong_rows(self, tiny_tensor):
        bad = [np.zeros((s + 1, 4)) for s in tiny_tensor.shape]
        with pytest.raises(TensorFormatError, match="rows"):
            check_factors(tiny_tensor.shape, bad)

    def test_rejects_rank_mismatch(self, tiny_tensor):
        mats = [np.zeros((s, 4)) for s in tiny_tensor.shape]
        mats[1] = np.zeros((tiny_tensor.shape[1], 5))
        with pytest.raises(TensorFormatError, match="rank"):
            check_factors(tiny_tensor.shape, mats)

    def test_mode_out_of_range(self, tiny_tensor, make_factors):
        with pytest.raises(TensorFormatError):
            mttkrp_coo_reference(
                tiny_tensor, make_factors(tiny_tensor.shape), 3
            )
