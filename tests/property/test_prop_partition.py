"""Property-based tests for partitioning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.balance import assign_lpt, bin_loads
from repro.partition.isp import split_isp
from repro.partition.plan import build_partition_plan
from repro.partition.sharding import shard_mode
from repro.tensor.generate import zipf_coo


@st.composite
def tensors_and_params(draw):
    nmodes = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(2, 30)) for _ in range(nmodes))
    nnz = draw(st.integers(1, 300))
    seed = draw(st.integers(0, 2**31 - 1))
    exponent = draw(st.floats(0.0, 1.6))
    return zipf_coo(shape, nnz, exponents=exponent, seed=seed)


class TestShardingProperties:
    @given(tensors_and_params(), st.integers(0, 3), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_shard_invariants(self, t, mode_raw, n_shards):
        mode = mode_raw % t.nmodes
        part = shard_mode(t, mode, n_shards)
        part.validate()  # coverage, contiguity, range membership
        # task independence: every output index in exactly one shard
        seen = set()
        for shard in part.shards:
            idx = np.unique(part.tensor.indices[shard.elements, mode])
            for i in idx:
                assert i not in seen
                seen.add(int(i))

    @given(tensors_and_params(), st.integers(1, 5), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_plan_rows_partition_index_space(self, t, n_gpus, shards_per_gpu):
        plan = build_partition_plan(t, n_gpus, shards_per_gpu=shards_per_gpu)
        for mode in range(t.nmodes):
            covered = np.zeros(t.shape[mode], dtype=int)
            for g in range(n_gpus):
                for lo, hi in plan.output_rows_for_gpu(mode, g):
                    covered[lo:hi] += 1
            assert (covered == 1).all()

    @given(tensors_and_params(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_plan_conserves_nnz(self, t, n_gpus):
        plan = build_partition_plan(t, n_gpus, shards_per_gpu=3)
        for mode in range(t.nmodes):
            assert plan.gpu_nnz(mode).sum() == t.nnz


class TestBalanceProperties:
    @given(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=100),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_lpt_conserves_and_bounds(self, sizes, n_bins):
        sizes = np.array(sizes, dtype=np.int64)
        a = assign_lpt(sizes, n_bins)
        loads = bin_loads(sizes, a, n_bins)
        assert loads.sum() == sizes.sum()
        # Graham's list-scheduling guarantee, provable against computable
        # quantities: makespan <= sum/m + (1 - 1/m) * max item. (The 4/3
        # factor holds only against the true optimum, which can exceed the
        # naive max(avg, biggest-item) lower bound — e.g. four 9s into
        # three bins force a bin of 18 while that bound is 12.)
        if sizes.sum() > 0:
            bound = sizes.sum() / n_bins + (1 - 1 / n_bins) * sizes.max()
            assert loads.max() <= bound + 1e-9

    @given(st.integers(0, 10_000), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_isp_split_exact_cover(self, nnz, n_parts):
        slices = split_isp(nnz, n_parts)
        assert len(slices) == n_parts
        assert slices[0].start == 0
        assert slices[-1].stop == nnz
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start
        sizes = [s.stop - s.start for s in slices]
        assert max(sizes) - min(sizes) <= 1
