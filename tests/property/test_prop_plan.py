"""Property-based tests of the execution-plan layer.

The invariant under test is the PR 10 contract over *arbitrary valid
configs*: resolve a plan, serialize it to JSON, reload it, build an
executor from the reloaded plan — the result must be **bit-identical**
to the direct ``AmpedMTTKRP`` path, and the reloaded plan must be the
same object (fingerprint included). Kept to in-memory sources and the
serial/thread/auto backends so hundreds of examples stay cheap; the
out-of-core and cluster legs are pinned case-by-case in
``tests/engine/test_plan_layer.py`` and the golden matrix.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.engine.plan import ExecutionPlan, build_executor, plan_tensor
from repro.tensor.generate import random_coo


@st.composite
def plan_cases(draw):
    """(tensor, config, factor seed) over the resident execution space."""
    nmodes = draw(st.integers(3, 4))
    shape = tuple(draw(st.integers(4, 12)) for _ in range(nmodes))
    nnz = draw(st.integers(20, 250))
    tensor = random_coo(shape, nnz, seed=draw(st.integers(0, 2**31 - 1)))
    backend, workers = draw(st.sampled_from([
        ("serial", 1), ("thread", 2), ("thread", 3), ("auto", 1),
    ]))
    config = AmpedConfig(
        n_gpus=draw(st.integers(1, 3)),
        shards_per_gpu=draw(st.integers(1, 3)),
        rank=draw(st.integers(2, 6)),
        backend=backend,
        workers=workers,
        kernel=draw(st.sampled_from(["auto", "numpy"])),
        prefetch=draw(st.booleans()),
        batch_size=draw(st.sampled_from([None, 16, 64])),
    )
    return tensor, config, draw(st.integers(0, 2**31 - 1))


class TestPlanRoundTripProperties:
    @given(plan_cases())
    @settings(max_examples=40, deadline=None)
    def test_serialize_load_build_is_bit_identical(self, case):
        tensor, config, factor_seed = case
        rng = np.random.default_rng(factor_seed)
        factors = [rng.random((s, config.rank)) for s in tensor.shape]
        with AmpedMTTKRP(tensor, config) as direct:
            reloaded = ExecutionPlan.from_json(direct.plan.to_json())
            assert reloaded == direct.plan
            with build_executor(reloaded, tensor=tensor) as rebuilt:
                assert rebuilt.plan.fingerprint == direct.plan.fingerprint
                for mode in range(tensor.nmodes):
                    assert np.array_equal(
                        rebuilt.mttkrp(factors, mode),
                        direct.mttkrp(factors, mode),
                    )

    @given(plan_cases())
    @settings(max_examples=60, deadline=None)
    def test_plan_is_deterministic_and_concrete(self, case):
        tensor, config, _ = case
        a = plan_tensor(tensor, config)
        b = plan_tensor(tensor, config)
        assert a == b and a.fingerprint == b.fingerprint
        # every auto axis came out concrete and priced
        assert a.backend in ("serial", "thread", "process", "cluster")
        assert a.kernel != "auto"
        assert a.time_plan["total_s"] > 0
        assert a.memory_plan["tensor_resident"] > 0

    @given(plan_cases())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_preserves_fingerprint(self, case):
        tensor, config, _ = case
        plan = plan_tensor(tensor, config)
        again = ExecutionPlan.from_dict(plan.to_dict())
        assert again == plan
        assert again.to_json() == plan.to_json()
