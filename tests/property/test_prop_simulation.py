"""Property-based tests for the timing simulation's physical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AmpedConfig
from repro.core.simulate import simulate_amped
from repro.core.workload import ModeWorkload, TensorWorkload
from repro.partition.balance import assign_lpt
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import RTX6000_ADA, paper_platform
from repro.simgpu.trace import Category


@st.composite
def synthetic_workloads(draw):
    """Random small workload descriptors for a fixed 3-GPU platform."""
    n_gpus = 3
    nmodes = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(100, 5000)) for _ in range(nmodes))
    modes = []
    nnz_total = None
    for m in range(nmodes):
        n_shards = draw(st.integers(1, 12))
        n_shards = min(n_shards, shape[m])
        if nnz_total is None:
            shard_nnz = np.array(
                [draw(st.integers(1, 10**6)) for _ in range(n_shards)],
                dtype=np.int64,
            )
            nnz_total = int(shard_nnz.sum())
        else:
            # later modes must redistribute the same nonzeros
            cuts = sorted(
                draw(
                    st.lists(
                        st.integers(0, nnz_total),
                        min_size=n_shards - 1,
                        max_size=n_shards - 1,
                    )
                )
            )
            bounds = [0] + cuts + [nnz_total]
            shard_nnz = np.diff(bounds).astype(np.int64)
        assignment = assign_lpt(shard_nnz, n_gpus)
        bounds_idx = np.linspace(0, shape[m], shard_nnz.shape[0] + 1).astype(np.int64)
        widths = bounds_idx[1:] - bounds_idx[:-1]
        rows = np.bincount(assignment, weights=widths, minlength=n_gpus).astype(
            np.int64
        )
        modes.append(
            ModeWorkload(
                mode=m,
                extent=shape[m],
                shard_nnz=shard_nnz,
                assignment=assignment,
                rows_per_gpu=rows,
                factor_hit=draw(st.floats(0.0, 1.0)),
            )
        )
    return TensorWorkload(
        name="prop", shape=shape, nnz=nnz_total, modes=tuple(modes)
    )


class TestSimulationInvariants:
    @given(synthetic_workloads())
    @settings(max_examples=25, deadline=None)
    def test_physical_sanity(self, wl):
        cfg = AmpedConfig(n_gpus=3)
        cost = KernelCostModel()
        res = simulate_amped(paper_platform(3), cost, wl, cfg)
        assert res.ok
        # time strictly positive and mode windows tile the run
        assert res.total_time > 0
        prev = 0.0
        for mt in res.mode_times:
            assert mt.start == prev
            assert mt.start <= mt.compute_done <= mt.end
            prev = mt.end
        assert prev == res.total_time
        # no engine can be busy longer than the makespan
        tl = res.timeline
        for cat in Category:
            for g in range(3):
                assert tl.device_busy(g, cat) <= res.total_time + 1e-9
        # every span fits inside the run
        assert all(0.0 <= s.start <= s.end <= res.total_time + 1e-9 for s in tl.spans)

    @given(synthetic_workloads())
    @settings(max_examples=15, deadline=None)
    def test_double_buffering_never_hurts(self, wl):
        cfg_on = AmpedConfig(n_gpus=3, double_buffer=True)
        cfg_off = AmpedConfig(n_gpus=3, double_buffer=False)
        cost = KernelCostModel()
        t_on = simulate_amped(paper_platform(3), cost, wl, cfg_on).total_time
        t_off = simulate_amped(paper_platform(3), cost, wl, cfg_off).total_time
        assert t_on <= t_off + 1e-9

    @given(synthetic_workloads())
    @settings(max_examples=15, deadline=None)
    def test_compute_busy_matches_per_gpu_report(self, wl):
        cfg = AmpedConfig(n_gpus=3)
        res = simulate_amped(paper_platform(3), KernelCostModel(), wl, cfg)
        for g in range(3):
            assert res.per_gpu_compute[g] == res.timeline.device_busy(
                g, Category.COMPUTE
            )


class TestCostModelProperties:
    @given(
        st.integers(1, 10**9),
        st.integers(1, 256),
        st.integers(2, 6),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_time_positive_and_monotone_in_nnz(self, nnz, rank, nmodes, hit):
        cost = KernelCostModel()
        t1 = cost.mttkrp_time(RTX6000_ADA, nnz, rank, nmodes, factor_hit=hit)
        t2 = cost.mttkrp_time(RTX6000_ADA, 2 * nnz, rank, nmodes, factor_hit=hit)
        assert 0 < t1 <= t2

    @given(st.integers(1, 10**8), st.integers(1, 128), st.integers(2, 5))
    @settings(max_examples=60, deadline=None)
    def test_sorted_never_slower(self, nnz, rank, nmodes):
        cost = KernelCostModel()
        kw = dict(factor_hit=0.5)
        assert cost.mttkrp_time(
            RTX6000_ADA, nnz, rank, nmodes, sorted_output=True, **kw
        ) <= cost.mttkrp_time(
            RTX6000_ADA, nnz, rank, nmodes, sorted_output=False, **kw
        )
