"""Property-based tests for communication primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.allgather import ring_allgather
from repro.comm.collectives import host_gather_merge
from repro.simgpu.interconnect import RingTopology


class TestRingAllgatherProperties:
    @given(
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_rank_ends_with_identical_state(self, m, seed):
        rng = np.random.default_rng(seed)
        chunks = [rng.random((int(rng.integers(1, 5)), 3)) for _ in range(m)]
        views = ring_allgather(chunks)
        for v in views[1:]:
            for c0, c in zip(views[0], v):
                assert np.array_equal(c0, c)
        for c_in, c_out in zip(chunks, views[0]):
            assert np.array_equal(c_in, c_out)

    @given(st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_ring_schedule_is_valid_forwarding(self, n):
        """At every step each rank sends a chunk it already holds and after
        n-1 steps holds all n chunks (the Algorithm 3 schedule, corrected)."""
        ring = RingTopology(n)
        holdings = {g: {g} for g in range(n)}
        for step in range(n - 1):
            for g in range(n):
                assert ring.send_chunk(g, step) in holdings[g]
            incoming = {
                g: ring.send_chunk(ring.prev_of(g), step) for g in range(n)
            }
            for g, c in incoming.items():
                holdings[g].add(c)
        for g in range(n):
            assert holdings[g] == set(range(n))


class TestMergeProperties:
    @given(
        st.integers(1, 6),
        st.integers(1, 10),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_numpy_sum(self, parts, rows, rank, seed):
        rng = np.random.default_rng(seed)
        partials = [rng.standard_normal((rows, rank)) for _ in range(parts)]
        merged = host_gather_merge(partials)
        assert np.allclose(merged, np.sum(partials, axis=0))
