"""Property-based tests for CP decomposition components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpd.ktensor import KruskalTensor
from repro.cpd.norms import factor_match_score, normalize_columns


@st.composite
def kruskal_models(draw):
    nmodes = draw(st.integers(2, 4))
    rank = draw(st.integers(1, 4))
    shape = tuple(draw(st.integers(1, 8)) for _ in range(nmodes))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.1, 5.0, rank)
    factors = tuple(rng.standard_normal((s, rank)) for s in shape)
    return KruskalTensor(weights, factors)


class TestKruskalProperties:
    @given(kruskal_models())
    @settings(max_examples=40, deadline=None)
    def test_norm_identity_matches_dense(self, model):
        """The cross-Gram norm formula equals the dense Frobenius norm."""
        assert np.isclose(
            model.norm(), np.linalg.norm(model.full().ravel()), atol=1e-8
        )

    @given(kruskal_models())
    @settings(max_examples=40, deadline=None)
    def test_values_at_consistent_with_full(self, model):
        coords = np.argwhere(np.ones(model.shape, dtype=bool)).astype(np.int64)
        vals = model.values_at(coords)
        assert np.allclose(vals, model.full()[tuple(coords.T)], atol=1e-9)

    @given(kruskal_models(), st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_norm_scales_linearly_with_weights(self, model, alpha):
        scaled = KruskalTensor(model.weights * alpha, model.factors)
        assert np.isclose(scaled.norm(), alpha * model.norm(), rtol=1e-9)

    @given(kruskal_models())
    @settings(max_examples=30, deadline=None)
    def test_arrange_preserves_model(self, model):
        """Component reordering must not change the represented tensor."""
        assert np.allclose(model.arrange().full(), model.full(), atol=1e-9)


class TestNormalizationProperties:
    @given(
        st.integers(1, 20),
        st.integers(1, 6),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_normalize_reconstructs(self, rows, cols, seed):
        m = np.random.default_rng(seed).standard_normal((rows, cols))
        normed, norms = normalize_columns(m)
        assert np.allclose(normed * norms, m, atol=1e-9)
        nonzero = np.linalg.norm(m, axis=0) > 0
        assert np.allclose(
            np.linalg.norm(normed[:, nonzero], axis=0), 1.0, atol=1e-9
        )

    @given(kruskal_models())
    @settings(max_examples=30, deadline=None)
    def test_fms_reflexive_and_permutation_invariant(self, model):
        factors = [np.asarray(f) for f in model.factors]
        if any(np.linalg.norm(f, axis=0).min() == 0 for f in factors):
            return  # degenerate zero column: congruence undefined
        assert factor_match_score(factors, factors) > 0.999
        perm = np.random.default_rng(0).permutation(model.rank)
        permuted = [f[:, perm] for f in factors]
        assert factor_match_score(factors, permuted) > 0.999
