"""Property-based tests: every execution path computes the same MTTKRP."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.tensor.formats.csf import CSFTensor
from repro.tensor.generate import zipf_coo
from repro.tensor.reference import mttkrp_coo_reference, mttkrp_dense_reference


@st.composite
def mttkrp_cases(draw):
    nmodes = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(2, 14)) for _ in range(nmodes))
    nnz = draw(st.integers(1, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    exponent = draw(st.floats(0.0, 1.5))
    rank = draw(st.integers(1, 6))
    mode = draw(st.integers(0, nmodes - 1))
    return shape, nnz, seed, exponent, rank, mode


class TestCrossImplementationAgreement:
    @given(mttkrp_cases())
    @settings(max_examples=40, deadline=None)
    def test_dense_vs_coo_reference(self, case):
        shape, nnz, seed, exponent, rank, mode = case
        t = zipf_coo(shape, nnz, exponents=exponent, seed=seed)
        rng = np.random.default_rng(seed + 1)
        factors = [rng.standard_normal((s, rank)) for s in shape]
        a = mttkrp_coo_reference(t, factors, mode)
        b = mttkrp_dense_reference(t, factors, mode)
        assert np.allclose(a, b, atol=1e-9)

    @given(mttkrp_cases(), st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_amped_partitioned_execution(self, case, n_gpus, shards_per_gpu):
        """AMPED's sharded/ISP execution is exact for any partitioning."""
        shape, nnz, seed, exponent, rank, mode = case
        t = zipf_coo(shape, nnz, exponents=exponent, seed=seed)
        rng = np.random.default_rng(seed + 2)
        factors = [rng.standard_normal((s, rank)) for s in shape]
        ex = AmpedMTTKRP(
            t,
            AmpedConfig(
                n_gpus=n_gpus, rank=rank, shards_per_gpu=shards_per_gpu
            ),
        )
        got = ex.mttkrp(factors, mode)
        want = mttkrp_coo_reference(t, factors, mode)
        assert np.allclose(got, want, atol=1e-9)

    @given(mttkrp_cases())
    @settings(max_examples=30, deadline=None)
    def test_csf_tree_mttkrp(self, case):
        shape, nnz, seed, exponent, rank, mode = case
        t = zipf_coo(shape, nnz, exponents=exponent, seed=seed)
        rng = np.random.default_rng(seed + 3)
        factors = [rng.standard_normal((s, rank)) for s in shape]
        csf = CSFTensor.from_coo(t)
        got = csf.mttkrp(factors, mode)
        want = mttkrp_coo_reference(t, factors, mode)
        assert np.allclose(got, want, atol=1e-9)
