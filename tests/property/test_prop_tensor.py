"""Property-based tests (hypothesis) for the tensor substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor.coo import SparseTensorCOO
from repro.tensor.formats.blco import BLCOTensor
from repro.tensor.formats.csf import CSFTensor
from repro.tensor.formats.hicoo import HiCOOTensor
from repro.tensor.formats.linearize import LinearIndexCodec


@st.composite
def coo_tensors(draw, max_modes=4, max_extent=12, max_nnz=60):
    """Random small COO tensors (possibly with duplicate coordinates)."""
    nmodes = draw(st.integers(2, max_modes))
    shape = tuple(draw(st.integers(1, max_extent)) for _ in range(nmodes))
    nnz = draw(st.integers(0, max_nnz))
    idx_cols = [
        draw(
            arrays(np.int64, (nnz,), elements=st.integers(0, s - 1))
        )
        for s in shape
    ]
    indices = (
        np.column_stack(idx_cols) if nnz else np.empty((0, nmodes), dtype=np.int64)
    )
    values = draw(
        arrays(
            np.float64,
            (nnz,),
            elements=st.floats(-10, 10, allow_nan=False, width=64).filter(
                lambda x: abs(x) > 1e-6
            ),
        )
    )
    return SparseTensorCOO(indices, values, shape)


class TestCooProperties:
    @given(coo_tensors())
    @settings(max_examples=60, deadline=None)
    def test_dedup_preserves_dense_sum(self, t):
        """Deduplication is a pure regrouping: the dense tensor is unchanged."""
        assert np.allclose(t.deduplicated().to_dense(), t.to_dense())

    @given(coo_tensors(), st.integers(0, 3))
    @settings(max_examples=60, deadline=None)
    def test_sort_by_mode_is_permutation(self, t, mode_raw):
        mode = mode_raw % t.nmodes
        s = t.sorted_by_mode(mode)
        assert s.allclose(t)
        keys = s.indices[:, mode]
        assert (np.diff(keys) >= 0).all()

    @given(coo_tensors())
    @settings(max_examples=40, deadline=None)
    def test_norm_matches_dense_after_canonicalization(self, t):
        """norm() is the Frobenius norm of the canonical (deduplicated) form."""
        canonical = t.deduplicated()
        assert np.isclose(
            canonical.norm(), np.linalg.norm(canonical.to_dense().ravel())
        )


class TestFormatRoundTrips:
    @given(coo_tensors())
    @settings(max_examples=40, deadline=None)
    def test_csf_roundtrip(self, t):
        assert CSFTensor.from_coo(t).to_coo().allclose(t)

    @given(coo_tensors(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_hicoo_roundtrip(self, t, block_bits):
        assert HiCOOTensor.from_coo(t, block_bits=block_bits).to_coo().allclose(t)

    @given(coo_tensors(), st.integers(4, 63))
    @settings(max_examples=40, deadline=None)
    def test_blco_roundtrip(self, t, word_bits):
        b = BLCOTensor.from_coo(t, word_bits=word_bits)
        assert b.to_coo().allclose(t)
        assert b.nnz == t.nnz


class TestLinearizeProperties:
    @given(
        st.lists(st.integers(1, 2**20), min_size=1, max_size=5),
        st.integers(0, 200),
        st.integers(1, 63),
        st.integers(0, 2**32),
    )
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_identity(self, shape, nnz, word_bits, seed):
        shape = tuple(shape)
        rng = np.random.default_rng(seed)
        idx = (
            np.column_stack([rng.integers(0, s, nnz) for s in shape]).astype(np.int64)
            if nnz
            else np.empty((0, len(shape)), dtype=np.int64)
        )
        codec = LinearIndexCodec(shape)
        block, offset, obits = codec.encode_blocked(idx, word_bits=word_bits)
        assert np.array_equal(codec.decode_blocked(block, offset, obits), idx)
        # offsets must fit in the declared bit budget
        if nnz:
            assert offset.max(initial=0) < (1 << obits)
