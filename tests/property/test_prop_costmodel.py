"""Property-based tests for the host-pipeline timing model.

Invariants (satellite of the cost-model issue):

* predicted total time is **monotone nondecreasing in nnz** — streaming
  more elements can never be predicted cheaper, for any backend,
  out-of-core setting, codec, prefetch flag, and (valid) profile;
* predicted total time is **monotone nondecreasing in the codec's
  compressed-size ratio** — a worse compressor can only add read time;
* the reported total always equals the sum of its visible terms, and every
  term is finite and nonnegative (a model that returns NaN/negative time
  would silently corrupt ``backend="auto"`` ranking);
* ``resolve_auto_backend`` always returns one of the three candidates it
  ranked, and the candidate it returns has the smallest predicted total.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AmpedConfig
from repro.core.workload import ModeWorkload, TensorWorkload
from repro.engine.costmodel import (
    DEFAULT_HOST_PROFILE,
    host_time_plan,
    rank_backends,
    resolve_auto_backend,
)
from repro.simgpu.kernel import KernelCostModel

COST = KernelCostModel()

TERMS = (
    "compute_s",
    "dispatch_s",
    "ipc_s",
    "staging_read_s",
    "decompress_s",
    "stall_s",
    "prefetch_overhead_s",
    "total_s",
)


def make_workload(nnz: int, nmodes: int = 3, n_gpus: int = 2) -> TensorWorkload:
    """A minimal descriptor with ``nnz`` split over a few shards per mode."""
    shape = tuple(max(4, nnz // (2 + m)) for m in range(nmodes))
    n_shards = 4
    base, rem = divmod(nnz, n_shards)
    shard_nnz = np.array(
        [base + (1 if j < rem else 0) for j in range(n_shards)], dtype=np.int64
    )
    assignment = np.arange(n_shards, dtype=np.int64) % n_gpus
    modes = tuple(
        ModeWorkload(
            mode=m,
            extent=shape[m],
            shard_nnz=shard_nnz,
            assignment=assignment,
            rows_per_gpu=np.full(n_gpus, shape[m] // n_gpus, dtype=np.int64),
            factor_hit=0.5,
        )
        for m in range(nmodes)
    )
    return TensorWorkload(name="prop", shape=shape, nnz=nnz, modes=modes)


config_strategy = st.fixed_dictionaries(
    {
        "backend": st.sampled_from(["serial", "thread", "process"]),
        "workers": st.integers(min_value=1, max_value=8),
        "prefetch": st.booleans(),
        "oc": st.sampled_from([None, "v1", "zlib", "lzma", "zstd", "none"]),
        "batch_size": st.sampled_from([None, "auto", 64, 4096]),
    }
)


def build_config(params) -> AmpedConfig:
    kw: dict = dict(
        rank=8,
        n_gpus=2,
        prefetch=params["prefetch"],
        batch_size=params["batch_size"],
    )
    if params["backend"] == "serial":
        kw.update(backend="serial", workers=1)
    else:
        kw.update(backend=params["backend"], workers=params["workers"])
    if params["oc"] is not None:
        kw.update(out_of_core=True, shard_cache="prop.npz")
        if params["oc"] != "v1":
            kw.update(cache_codec=params["oc"], cache_chunk_nnz=1024)
    return AmpedConfig(**kw)


@given(
    nnz_lo=st.integers(min_value=1, max_value=200_000),
    nnz_delta=st.integers(min_value=0, max_value=200_000),
    params=config_strategy,
)
@settings(max_examples=60, deadline=None)
def test_total_time_is_monotone_in_nnz(nnz_lo, nnz_delta, params):
    config = build_config(params)
    lo = host_time_plan(make_workload(nnz_lo), config, COST)
    hi = host_time_plan(make_workload(nnz_lo + nnz_delta), config, COST)
    assert hi["total_s"] >= lo["total_s"] - 1e-12


@given(
    nnz=st.integers(min_value=100, max_value=100_000),
    ratio_lo=st.floats(min_value=0.0, max_value=2.0),
    ratio_delta=st.floats(min_value=0.0, max_value=2.0),
    codec=st.sampled_from(["none", "zlib", "lzma", "zstd"]),
    prefetch=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_total_time_is_monotone_in_codec_ratio(
    nnz, ratio_lo, ratio_delta, codec, prefetch
):
    config = AmpedConfig(
        rank=8,
        n_gpus=2,
        out_of_core=True,
        shard_cache="prop.npz",
        cache_codec=codec,
        prefetch=prefetch,
        batch_size=256,
    )
    workload = make_workload(nnz)
    lo = host_time_plan(workload, config, COST, codec_ratio=ratio_lo)
    hi = host_time_plan(workload, config, COST, codec_ratio=ratio_lo + ratio_delta)
    assert hi["total_s"] >= lo["total_s"] - 1e-12
    assert hi["staging_read_s"] >= lo["staging_read_s"] - 1e-12


@given(
    nnz=st.integers(min_value=1, max_value=500_000),
    params=config_strategy,
)
@settings(max_examples=60, deadline=None)
def test_terms_are_finite_nonnegative_and_sum(nnz, params):
    config = build_config(params)
    plan = host_time_plan(make_workload(nnz), config, COST)
    for term in TERMS:
        assert math.isfinite(plan[term]) and plan[term] >= 0.0, term
    visible = (
        plan["compute_s"]
        + plan["dispatch_s"]
        + plan["ipc_s"]
        + plan["stall_s"]
        + plan["prefetch_overhead_s"]
    )
    assert math.isclose(plan["total_s"], visible, rel_tol=1e-12, abs_tol=1e-15)
    assert plan["n_batches"] >= 1


@given(
    nnz=st.integers(min_value=100, max_value=200_000),
    workers=st.integers(min_value=2, max_value=8),
    reduce_bw=st.floats(min_value=1e8, max_value=1e11),
    task_s=st.floats(min_value=0.0, max_value=1e-3),
)
@settings(max_examples=40, deadline=None)
def test_auto_backend_picks_the_ranked_minimum(nnz, workers, reduce_bw, task_s):
    profile = DEFAULT_HOST_PROFILE.replace(
        reduce_bandwidth=reduce_bw, process_task_s=task_s
    )
    config = AmpedConfig(rank=8, n_gpus=2, workers=workers)
    workload = make_workload(nnz)
    plans = rank_backends(workload, config, COST, profile)
    choice = resolve_auto_backend(workload, config, COST, profile)
    assert choice == (plans[0]["backend"], plans[0]["workers"])
    assert plans[0]["total_s"] == min(p["total_s"] for p in plans)
    assert choice[0] in ("serial", "thread", "process")
