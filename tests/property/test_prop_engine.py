"""Property-based tests for the streaming engine's batch slicing.

Invariants (satellites of the streaming-engine and shard-source issues):

* the batches of a shard partition its nonzeros exactly once, in order;
* every batch edge respects ``segment_starts`` boundaries — no output-mode
  segment is ever split across two batches;
* a batch exceeds ``batch_size`` only when it is a single oversized segment;
* consequently the streamed MTTKRP is bit-identical to the eager reduction
  for any batch size and worker count;
* every :class:`repro.engine.ShardSource` implementation yields exactly the
  same segment-aligned batch boundaries as the in-memory ``BatchPlan`` —
  the invariant that makes cache-backed and generator-backed runs
  bit-identical to the resident path;
* :class:`repro.engine.PrefetchingSource` yields exactly the wrapped
  source's batches, in order, with byte-identical element arrays — for any
  tensor, sharding, batch size, and prefetch depth (so prefetch can never
  change a result, only when bytes are read);
* the v2 chunked/compressed shard cache round-trips **byte-identically**
  for any tensor, codec, and chunk size — every mode-sorted array read
  back equals the bytes ``sorted_by_mode`` produced;
* the external-sort streaming builder, under an arbitrary tiny memory
  budget, emits a cache file **bit-identical** to the in-memory v2 writer
  (stable runs + stable merge == the global stable sort), with its tracked
  peak run size inside the budget-derived bound.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    InMemorySource,
    MmapNpzSource,
    PrefetchingSource,
    StreamingExecutor,
    SyntheticSource,
    build_batch_plan,
    slice_segments,
)
from repro.partition.plan import build_partition_plan
from repro.partition.sharding import shard_mode
from repro.tensor.generate import zipf_coo
from repro.tensor.io import (
    available_codecs,
    load_shard_cache_v2,
    write_shard_cache,
    write_shard_cache_streaming,
    write_shard_cache_v2,
)


@st.composite
def sliced_keys(draw):
    """A sorted key array plus a batch size."""
    n = draw(st.integers(0, 200))
    universe = draw(st.integers(1, 30))
    keys = np.sort(
        np.asarray(draw(
            st.lists(st.integers(0, universe - 1), min_size=n, max_size=n)
        ), dtype=np.int64)
    )
    batch_size = draw(st.one_of(st.none(), st.integers(1, 64)))
    return keys, batch_size


@st.composite
def engine_cases(draw):
    nmodes = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(2, 12)) for _ in range(nmodes))
    nnz = draw(st.integers(1, 150))
    seed = draw(st.integers(0, 2**31 - 1))
    n_gpus = draw(st.integers(1, 4))
    shards_per_gpu = draw(st.integers(1, 4))
    batch_size = draw(st.one_of(st.none(), st.integers(1, 50)))
    workers = draw(st.integers(1, 3))
    mode = draw(st.integers(0, nmodes - 1))
    return shape, nnz, seed, n_gpus, shards_per_gpu, batch_size, workers, mode


class TestSliceSegmentsProperties:
    @given(sliced_keys())
    @settings(max_examples=120, deadline=None)
    def test_partition_and_alignment(self, case):
        keys, batch_size = case
        slices = slice_segments(keys, batch_size)
        # exact cover, in order, no empty slices
        pos = 0
        for lo, hi in slices:
            assert lo == pos and hi > lo
            pos = hi
        assert pos == keys.shape[0]
        for lo, hi in slices:
            # batch edges never split a segment
            if lo > 0:
                assert keys[lo] != keys[lo - 1]
            # oversized batches are single segments
            if batch_size is not None and hi - lo > batch_size:
                assert (keys[lo:hi] == keys[lo]).all()

    @given(sliced_keys())
    @settings(max_examples=60, deadline=None)
    def test_cuts_are_maximal(self, case):
        """Greedy slicing: no batch could absorb its successor's first
        segment without exceeding batch_size."""
        keys, batch_size = case
        if batch_size is None:
            return
        slices = slice_segments(keys, batch_size)
        for (lo, hi), (nlo, nhi) in zip(slices, slices[1:]):
            next_seg_end = nlo + int(
                np.searchsorted(keys[nlo:], keys[nlo], side="right")
            )
            assert (next_seg_end - lo) > batch_size


class TestBatchPlanProperties:
    @given(engine_cases())
    @settings(max_examples=60, deadline=None)
    def test_plan_partitions_every_shard(self, case):
        shape, nnz, seed, _, _, batch_size, _, mode = case
        t = zipf_coo(shape, nnz, exponents=1.0, seed=seed)
        part = shard_mode(t, mode, min(4, shape[mode]))
        plan = build_batch_plan(part, batch_size)
        plan.validate_against(part)  # coverage + alignment invariants
        # every element covered exactly once across all batches
        counts = np.zeros(t.nnz, dtype=np.int64)
        for b in plan.batches:
            counts[b.elements] += 1
        assert (counts == 1).all()


class TestSourceProperties:
    @given(engine_cases())
    @settings(max_examples=20, deadline=None)
    def test_every_source_yields_batchplan_boundaries(self, case):
        """Mmap and synthetic sources cut exactly the batches BatchPlan cuts
        on the resident partition — for any tensor, sharding, and batch size."""
        shape, nnz, seed, n_gpus, shards_per_gpu, batch_size, _, mode = case
        t = zipf_coo(shape, nnz, exponents=1.0, seed=seed)
        plan = build_partition_plan(t, n_gpus, shards_per_gpu=shards_per_gpu)
        want = build_batch_plan(plan.modes[mode], batch_size)
        builder = lambda: zipf_coo(shape, nnz, exponents=1.0, seed=seed)  # noqa: E731
        synthetic = SyntheticSource(
            builder, n_gpus=n_gpus, shards_per_gpu=shards_per_gpu
        )
        with tempfile.TemporaryDirectory() as tmp:
            cache = write_shard_cache(t, Path(tmp) / "t.npz")
            mmap = MmapNpzSource(
                cache, n_gpus=n_gpus, shards_per_gpu=shards_per_gpu
            )
            for source in (synthetic, mmap):
                part = source.partition(mode)
                assert part.shards == plan.modes[mode].shards
                got = build_batch_plan(
                    part, batch_size, keys=source.mode_keys(mode)
                )
                assert got.batches == want.batches
                got.validate_against(part)
            mmap.close()


class TestPrefetchProperties:
    @given(engine_cases(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_prefetching_source_yields_wrapped_batches_in_order(
        self, case, depth
    ):
        """PrefetchingSource delivery == the wrapped source's batches: same
        order, same plan entries, byte-identical staged element arrays."""
        shape, nnz, seed, n_gpus, shards_per_gpu, batch_size, _, mode = case
        t = zipf_coo(shape, nnz, exponents=1.0, seed=seed)
        plan = build_partition_plan(t, n_gpus, shards_per_gpu=shards_per_gpu)
        source = InMemorySource(plan)
        prefetching = PrefetchingSource(source, depth=depth)
        part = source.partition(mode)
        batches = build_batch_plan(part, batch_size).batches
        loaded = list(prefetching.iter_batches(mode, batches))
        assert tuple(lb.batch for lb in loaded) == batches
        for lb in loaded:
            sl = lb.batch.elements
            assert np.array_equal(lb.indices, part.tensor.indices[sl])
            assert np.array_equal(lb.values, part.tensor.values[sl])


class TestExecutorProperties:
    @given(engine_cases(), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_streamed_equals_eager_bitwise(self, case, prefetch):
        shape, nnz, seed, n_gpus, shards_per_gpu, batch_size, workers, mode = case
        t = zipf_coo(shape, nnz, exponents=1.0, seed=seed)
        rng = np.random.default_rng(seed + 1)
        factors = [rng.standard_normal((s, 4)) for s in shape]
        plan = build_partition_plan(t, n_gpus, shards_per_gpu=shards_per_gpu)
        eager = StreamingExecutor(plan).mttkrp(factors, mode)
        with StreamingExecutor(
            plan, batch_size=batch_size, workers=workers, prefetch=prefetch
        ) as engine:
            streamed = engine.mttkrp(factors, mode)
        assert np.array_equal(eager, streamed)


@st.composite
def v2_cache_cases(draw):
    """An arbitrary small COO tensor plus v2 format knobs."""
    nmodes = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(2, 12)) for _ in range(nmodes))
    nnz = draw(st.integers(1, 200))
    seed = draw(st.integers(0, 2**31 - 1))
    codec = draw(st.sampled_from(available_codecs()))
    chunk_nnz = draw(st.integers(1, 64))
    return shape, nnz, seed, codec, chunk_nnz


class TestCompressedCacheProperties:
    @given(v2_cache_cases())
    @settings(max_examples=40, deadline=None)
    def test_v2_round_trip_is_byte_identical(self, case):
        """write_shard_cache_v2 -> load_shard_cache_v2 reproduces every
        mode-sorted array byte for byte, for any tensor, codec, and chunk
        size — compression and chunking never touch the logical content."""
        shape, nnz, seed, codec, chunk_nnz = case
        t = zipf_coo(shape, nnz, exponents=1.0, seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = write_shard_cache_v2(
                t, Path(tmp) / "t.npz", codec=codec, chunk_nnz=chunk_nnz
            )
            with load_shard_cache_v2(path) as reader:
                assert reader.shape == t.shape
                assert reader.nnz == t.nnz
                assert reader.codec_name == codec
                for m in range(t.nmodes):
                    s = t.sorted_by_mode(m)
                    idx = np.asarray(reader.array(f"mode{m}_indices"))
                    val = np.asarray(reader.array(f"mode{m}_values"))
                    keys = np.asarray(reader.array(f"mode{m}_keys"))
                    assert idx.tobytes() == s.indices.tobytes()
                    assert val.tobytes() == s.values.tobytes()
                    assert keys.tobytes() == s.indices[:, m].tobytes()

    @given(v2_cache_cases(), st.integers(1, 2000))
    @settings(max_examples=30, deadline=None)
    def test_external_sort_builder_bit_identical_under_any_budget(
        self, case, budget_elems
    ):
        """The streaming external-sort builder produces a file *bit-identical*
        to the in-memory v2 writer for any memory budget — even budgets so
        tiny that every element lands in its own run — and its tracked peak
        stays inside the budget-derived run bound."""
        shape, nnz, seed, codec, chunk_nnz = case
        t = zipf_coo(shape, nnz, exponents=1.0, seed=seed)
        per_element = (t.nmodes + 3) * 8
        budget = budget_elems * per_element
        with tempfile.TemporaryDirectory() as tmp:
            want = write_shard_cache_v2(
                t, Path(tmp) / "mem.npz", codec=codec, chunk_nnz=chunk_nnz
            )
            res = write_shard_cache_streaming(
                t,
                Path(tmp) / "ext.npz",
                memory_budget=budget,
                codec=codec,
                chunk_nnz=chunk_nnz,
            )
            assert res.path.read_bytes() == want.read_bytes()
            assert res.nnz == t.nnz and res.shape == t.shape
            assert res.run_nnz == max(1, budget // per_element)
            # the tracked peak: one run plus its sort permutation, or the
            # k-way merge working set — head blocks are at least one
            # element per run, so the floor is the run count, never O(nnz)
            assert res.peak_run_nnz <= 2 * max(res.run_nnz, res.n_runs)
