"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.tensor.generate import lowrank_coo
from repro.tensor.io import write_tns


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "amazon" in out and "1.7B" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "AMPED (ours)" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "fig99"]) == 2

    def test_simulate_amped(self, capsys):
        assert main(["simulate", "amazon", "--shards-per-gpu", "4"]) == 0
        out = capsys.readouterr().out
        assert "amped on amazon" in out

    def test_simulate_amped_batched(self, capsys):
        assert main(
            ["simulate", "amazon", "--shards-per-gpu", "4", "--batch-size", "1000000"]
        ) == 0
        assert "amped on amazon" in capsys.readouterr().out

    def test_simulate_batch_size_rejected_for_baselines(self, capsys):
        rc = main(["simulate", "amazon", "--method", "blco", "--batch-size", "64"])
        assert rc == 2
        assert "AMPED streaming engine only" in capsys.readouterr().out

    def test_simulate_oom_baseline_fails_cleanly(self, capsys):
        rc = main(["simulate", "reddit", "--method", "flycoo-gpu"])
        assert rc == 1
        assert "runtime error" in capsys.readouterr().out

    def test_decompose_synthetic(self, capsys):
        rc = main(
            [
                "decompose",
                "--dataset", "patents",
                "--nnz", "3000",
                "--rank", "4",
                "--iters", "3",
                "--gpus", "2",
            ]
        )
        assert rc == 0
        assert "CP-ALS rank 4" in capsys.readouterr().out

    def test_decompose_tns_file(self, tmp_path, capsys):
        tensor = lowrank_coo((12, 10, 8), 400, rank=2, seed=0)
        path = tmp_path / "t.tns"
        write_tns(path, tensor)
        rc = main(
            ["decompose", "--tns", str(path), "--rank", "2", "--iters", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fit=" in out

    def test_trace_export(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "twitch", str(out_path), "--gpus", "2"]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
