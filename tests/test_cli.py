"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.tensor.generate import lowrank_coo
from repro.tensor.io import write_tns


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "amazon" in out and "1.7B" in out

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "AMPED (ours)" in out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "fig99"]) == 2

    def test_simulate_amped(self, capsys):
        assert main(["simulate", "amazon", "--shards-per-gpu", "4"]) == 0
        out = capsys.readouterr().out
        assert "amped on amazon" in out

    def test_simulate_amped_batched(self, capsys):
        assert main(
            ["simulate", "amazon", "--shards-per-gpu", "4", "--batch-size", "1000000"]
        ) == 0
        assert "amped on amazon" in capsys.readouterr().out

    def test_simulate_batch_size_rejected_for_baselines(self, capsys):
        rc = main(["simulate", "amazon", "--method", "blco", "--batch-size", "64"])
        assert rc == 2
        assert "AMPED streaming engine only" in capsys.readouterr().out

    def test_simulate_oom_baseline_fails_cleanly(self, capsys):
        rc = main(["simulate", "reddit", "--method", "flycoo-gpu"])
        assert rc == 1
        assert "runtime error" in capsys.readouterr().out

    def test_decompose_synthetic(self, capsys):
        rc = main(
            [
                "decompose",
                "--dataset", "patents",
                "--nnz", "3000",
                "--rank", "4",
                "--iters", "3",
                "--gpus", "2",
            ]
        )
        assert rc == 0
        assert "CP-ALS rank 4" in capsys.readouterr().out

    def test_decompose_tns_file(self, tmp_path, capsys):
        tensor = lowrank_coo((12, 10, 8), 400, rank=2, seed=0)
        path = tmp_path / "t.tns"
        write_tns(path, tensor)
        rc = main(
            ["decompose", "--tns", str(path), "--rank", "2", "--iters", "5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fit=" in out

    def test_decompose_requires_a_tensor_source(self, capsys):
        rc = main(["decompose", "--rank", "2"])
        assert rc == 2
        assert "no tensor source" in capsys.readouterr().out

    def test_decompose_batch_size_accepts_auto_and_none(self, capsys):
        for value in ("auto", "none"):
            rc = main(
                [
                    "decompose",
                    "--dataset", "twitch",
                    "--nnz", "2000",
                    "--rank", "3",
                    "--iters", "2",
                    "--gpus", "2",
                    "--batch-size", value,
                ]
            )
            assert rc == 0
            assert "fit=" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_decompose_backend_and_prefetch(self, backend, capsys):
        """Every backend decomposes through the CLI and lands on the same
        fit as the serial default (bit-identical engine contract)."""
        args = [
            "decompose",
            "--dataset", "twitch",
            "--nnz", "1500",
            "--rank", "3",
            "--iters", "2",
            "--gpus", "2",
            "--seed", "3",
        ]
        assert main(args) == 0
        base_out = capsys.readouterr().out
        workers = [] if backend == "serial" else ["--workers", "2"]
        rc = main(args + ["--backend", backend, "--prefetch"] + workers)
        assert rc == 0
        out = capsys.readouterr().out
        assert f"engine backend: {backend}" in out
        assert "prefetch=on" in out
        def fit(text: str) -> str:
            line = next(l for l in text.splitlines() if "fit=" in l)
            return line.split("fit=")[1].split()[0]

        assert fit(out) == fit(base_out)

    def test_decompose_workers_alias_reports_thread_backend(self, capsys):
        rc = main(
            [
                "decompose",
                "--dataset", "twitch",
                "--nnz", "1500",
                "--rank", "3",
                "--iters", "2",
                "--gpus", "2",
                "--workers", "2",
            ]
        )
        assert rc == 0
        assert "engine backend: thread (workers=2" in capsys.readouterr().out

    def test_decompose_rejects_unknown_backend(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="backend must be one of"):
            main(
                [
                    "decompose",
                    "--dataset", "twitch",
                    "--nnz", "1500",
                    "--backend", "quantum",
                ]
            )

    def test_decompose_rejects_garbage_batch_size(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "decompose", "--dataset", "twitch",
                    "--batch-size", "sometimes",
                ]
            )
        assert "'auto', or 'none'" in capsys.readouterr().err


class TestOutOfCoreCommands:
    def _fit(self, out: str) -> str:
        for line in out.splitlines():
            if "fit=" in line:
                return line.split("fit=")[1].split()[0]
        raise AssertionError(f"no fit in output:\n{out}")

    def test_out_of_core_requires_shard_cache(self, capsys):
        rc = main(
            ["decompose", "--dataset", "twitch", "--nnz", "2000", "--out-of-core"]
        )
        assert rc == 2
        assert "--shard-cache" in capsys.readouterr().out

    def test_cache_then_out_of_core_decompose_matches_in_memory(
        self, tmp_path, capsys
    ):
        """.tns → shard cache → streaming decompose reproduces the in-memory
        fit (the CI smoke flow, via the CLI)."""
        tensor = lowrank_coo((14, 11, 9), 500, rank=2, noise=0.02, seed=4)
        tns = tmp_path / "t.tns"
        write_tns(tns, tensor)
        args = ["--rank", "2", "--iters", "4", "--gpus", "2", "--seed", "1"]
        assert main(["decompose", "--tns", str(tns)] + args) == 0
        fit_memory = self._fit(capsys.readouterr().out)

        cache = tmp_path / "t.npz"
        assert main(["cache", "--tns", str(tns), str(cache)]) == 0
        out = capsys.readouterr().out
        assert "wrote shard cache" in out and cache.is_file()

        rc = main(
            ["decompose", "--shard-cache", str(cache), "--out-of-core"] + args
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "out-of-core" in out and "streaming out of core" in out
        assert self._fit(out) == fit_memory

    def test_decompose_suffixless_cache_path(self, tmp_path, capsys):
        """np.savez appends .npz; the CLI must build once and then reuse."""
        cache = tmp_path / "noext"  # no .npz suffix
        args = [
            "decompose", "--dataset", "twitch", "--nnz", "2000",
            "--rank", "3", "--iters", "2", "--gpus", "2",
            "--shard-cache", str(cache), "--out-of-core",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "wrote shard cache" in out
        assert (tmp_path / "noext.npz").is_file()
        assert main(args) == 0  # second run reuses, does not rebuild
        assert "wrote shard cache" not in capsys.readouterr().out

    def test_decompose_builds_missing_cache(self, tmp_path, capsys):
        cache = tmp_path / "auto_built.npz"
        rc = main(
            [
                "decompose",
                "--dataset", "twitch",
                "--nnz", "2000",
                "--rank", "3",
                "--iters", "2",
                "--gpus", "2",
                "--shard-cache", str(cache),
                "--out-of-core",
            ]
        )
        assert rc == 0
        assert cache.is_file()
        assert "wrote shard cache" in capsys.readouterr().out

    def test_decompose_from_existing_cache_in_memory(self, tmp_path, capsys):
        """--shard-cache alone (no --tns/--dataset) is a valid tensor source."""
        tensor = lowrank_coo((12, 10, 8), 400, rank=2, seed=0)
        tns = tmp_path / "t.tns"
        write_tns(tns, tensor)
        cache = tmp_path / "t.npz"
        assert main(["cache", "--tns", str(tns), str(cache)]) == 0
        capsys.readouterr()
        rc = main(
            [
                "decompose", "--shard-cache", str(cache),
                "--rank", "2", "--iters", "2", "--gpus", "2",
            ]
        )
        assert rc == 0
        assert "fit=" in capsys.readouterr().out

    def test_cache_v2_flags_build_and_stream(self, tmp_path, capsys):
        """`repro cache --codec --chunk-nnz --memory-budget` builds a v2
        chunked cache via the external-sort builder, and decompose
        autodetects the format both out of core and in memory."""
        from repro.tensor.io import detect_shard_cache_version

        tensor = lowrank_coo((12, 10, 8), 400, rank=2, seed=0)
        tns = tmp_path / "t.tns"
        write_tns(tns, tensor)
        cache = tmp_path / "v2.npz"
        rc = main(
            ["cache", "--tns", str(tns), str(cache),
             "--codec", "zlib", "--chunk-nnz", "128",
             "--memory-budget", "8k"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "wrote v2 shard cache" in out and "external sort" in out
        assert detect_shard_cache_version(cache) == 2
        rc = main(
            ["decompose", "--shard-cache", str(cache), "--out-of-core",
             "--rank", "3", "--iters", "2", "--gpus", "2", "--prefetch"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "CompressedChunkSource" in out and "fit=" in out
        # an existing v2 cache also works as an in-memory tensor source
        rc = main(
            ["decompose", "--shard-cache", str(cache),
             "--rank", "3", "--iters", "2", "--gpus", "2"]
        )
        assert rc == 0
        assert "fit=" in capsys.readouterr().out

    def test_cache_v2_in_memory_build(self, tmp_path, capsys):
        """--codec without --memory-budget takes the in-memory v2 writer."""
        cache = tmp_path / "v2mem.npz"
        rc = main(
            ["cache", "--dataset", "twitch", "--nnz", "2000",
             "--codec", "zlib", str(cache)]
        )
        assert rc == 0
        assert "wrote v2 shard cache" in capsys.readouterr().out

    def test_cache_bad_memory_budget_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                ["cache", "--dataset", "twitch", str(tmp_path / "c.npz"),
                 "--memory-budget", "lots"]
            )

    @pytest.mark.parametrize("bad", ["0", "-5", "many"])
    def test_cache_bad_chunk_nnz_rejected(self, tmp_path, capsys, bad):
        """--chunk-nnz must be a positive int; 0 must not silently fall
        back to the format default."""
        with pytest.raises(SystemExit):
            main(
                ["cache", "--dataset", "twitch", str(tmp_path / "c.npz"),
                 "--chunk-nnz", bad]
            )

    def test_cache_max_nnz_guard(self, tmp_path, capsys):
        tensor = lowrank_coo((12, 10, 8), 400, rank=2, seed=0)
        tns = tmp_path / "t.tns"
        write_tns(tns, tensor)
        with pytest.raises(Exception, match="max_nnz"):
            main(["cache", "--tns", str(tns), str(tmp_path / "c.npz"),
                  "--max-nnz", "10"])

    def test_trace_export(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "twitch", str(out_path), "--gpus", "2"]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]


class TestSizeArgParsing:
    """The one canonical size parser behind --memory-budget / --chunk-nnz
    (and AmpedConfig.cache_chunk_nnz): suffixes are case-insensitive, zero
    and negative values are rejected *after* suffix multiplication, and
    every rejection carries the same message."""

    ACCEPTED = [
        ("1024", 1024),
        ("64k", 64 << 10),
        ("64K", 64 << 10),
        ("2m", 2 << 20),
        ("256M", 256 << 20),
        ("4g", 4 << 30),
        ("4G", 4 << 30),
        (" 16k ", 16 << 10),
    ]
    REJECTED = ["0", "0k", "0M", "-1", "-2G", "", "k", "M", "1.5G", "64kb",
                "lots", "1e3"]

    @pytest.mark.parametrize("text,expected", ACCEPTED)
    def test_accepted_literals(self, text, expected):
        from repro.cli import _chunk_nnz_arg, _size_arg

        assert _size_arg(text) == expected
        assert _chunk_nnz_arg(text) == expected

    @pytest.mark.parametrize("text", REJECTED)
    def test_rejected_literals_share_the_canonical_message(self, text):
        import argparse

        from repro.cli import _chunk_nnz_arg, _size_arg

        with pytest.raises(
            argparse.ArgumentTypeError, match="positive integer"
        ) as size_exc:
            _size_arg(text)
        with pytest.raises(
            argparse.ArgumentTypeError, match="positive integer"
        ) as chunk_exc:
            _chunk_nnz_arg(text)
        # identical wording up to the knob name
        assert str(size_exc.value).replace("byte count", "X") == str(
            chunk_exc.value
        ).replace("chunk-nnz", "X")

    def test_config_mirrors_the_cli_validation(self):
        """AmpedConfig.cache_chunk_nnz accepts/rejects the same literals."""
        from repro.core.config import AmpedConfig
        from repro.errors import ReproError

        for text, expected in self.ACCEPTED:
            assert AmpedConfig(cache_chunk_nnz=text).cache_chunk_nnz == expected
        for text in self.REJECTED:
            with pytest.raises(ReproError, match="positive integer"):
                AmpedConfig(cache_chunk_nnz=text)

    def test_chunk_nnz_suffix_builds_a_cache(self, tmp_path, capsys):
        cache = tmp_path / "suffixed.npz"
        rc = main(
            ["cache", "--dataset", "twitch", "--nnz", "2000",
             "--codec", "zlib", "--chunk-nnz", "1k", str(cache)]
        )
        assert rc == 0
        assert "chunk_nnz=1024" in capsys.readouterr().out


class TestProfileCommand:
    def test_profile_quick_writes_and_reports(self, tmp_path, capsys):
        out_path = tmp_path / "host.json"
        assert main(["profile", str(out_path), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "wrote host profile" in out
        assert "--backend auto" in out
        from repro.engine.costmodel import load_host_profile

        profile = load_host_profile(out_path)
        assert profile.quick is True

    def test_decompose_backend_auto_with_profile(self, tmp_path, capsys):
        from repro.engine.costmodel import DEFAULT_HOST_PROFILE

        path = DEFAULT_HOST_PROFILE.save(tmp_path / "p.json")
        rc = main(
            ["decompose", "--dataset", "twitch", "--nnz", "2000",
             "--rank", "3", "--iters", "2", "--gpus", "2",
             "--backend", "auto", "--host-profile", str(path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "resolved from 'auto' by the host cost model" in out
        assert "predicted host pipeline" in out

    def test_decompose_prints_host_prediction(self, capsys):
        rc = main(
            ["decompose", "--dataset", "twitch", "--nnz", "2000",
             "--rank", "3", "--iters", "2", "--gpus", "2"]
        )
        assert rc == 0
        assert "predicted host pipeline (serial" in capsys.readouterr().out

    def test_simulate_prints_host_prediction(self, capsys):
        assert main(["simulate", "amazon", "--shards-per-gpu", "4"]) == 0
        assert "host pipeline" in capsys.readouterr().out

    def test_decompose_bad_host_profile_fails_cleanly(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="cannot read host profile"):
            main(
                ["decompose", "--dataset", "twitch", "--nnz", "2000",
                 "--gpus", "2", "--host-profile",
                 str(tmp_path / "missing.json")]
            )


class TestBenchCommand:
    def test_bench_run_smoke_subset_and_report(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_t.json"
        rc = main(
            ["bench", "run", "--smoke", "--out", str(out_path),
             "--only", "serial", "--nnz", "500", "--repeats", "2",
             "--warmup", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrote trajectory" in out
        from repro.bench.trajectory import load_trajectory

        traj = load_trajectory(out_path)
        assert traj["label"] == "smoke"
        assert traj["trials"]
        assert all("serial" in t["cell"] for t in traj["trials"])
        assert all("prediction_error" in t for t in traj["trials"])

        rc = main(
            ["bench", "report", str(out_path),
             "--previous", str(out_path),
             "--out", str(tmp_path / "report.md")]
        )
        assert rc == 0
        report = capsys.readouterr().out
        assert "Mean |prediction error|" in report
        assert "tie" in report  # self-comparison can only tie
        assert (tmp_path / "report.md").is_file()

    def test_bench_run_no_matching_cells(self, tmp_path, capsys):
        rc = main(
            ["bench", "run", "--smoke", "--out",
             str(tmp_path / "empty.json"), "--only", "no-such-cell"]
        )
        assert rc == 2
        assert "no trials matched" in capsys.readouterr().out

    def test_bench_report_missing_file(self, tmp_path, capsys):
        rc = main(["bench", "report", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "cannot read trajectory" in capsys.readouterr().out

    def test_bench_report_version_mismatch(self, tmp_path, capsys):
        bad = tmp_path / "future.json"
        bad.write_text(json.dumps({"version": 999, "trials": []}))
        rc = main(["bench", "report", str(bad)])
        assert rc == 2
        assert "version" in capsys.readouterr().out

    def test_committed_trajectory_is_valid(self):
        """BENCH_8.json at the repo root must stay loadable (CI gate) —
        and so must its predecessors, which the comparison report reads
        as ``--previous``. The current file must carry the 2-node
        loopback cluster cells with the measured-vs-predicted comm
        record."""
        import pathlib

        from repro.bench.trajectory import load_trajectory

        root = pathlib.Path(__file__).resolve().parents[1]
        for name in ("BENCH_8.json", "BENCH_7.json", "BENCH_6.json"):
            committed = root / name
            assert committed.is_file(), f"{name} must be committed"
            traj = load_trajectory(committed)
            assert traj["trials"], "committed trajectory must hold trials"
            for t in traj["trials"]:
                assert "prediction_error" in t
        cluster = [
            t
            for t in load_trajectory(root / "BENCH_8.json")["trials"]
            if t["resolved_backend"] == "cluster"
        ]
        assert cluster, "BENCH_8.json must hold cluster cells"
        for t in cluster:
            assert t["comm"]["measured_s"] > 0
            assert t["comm"]["predicted_s"] > 0
            assert "error" in t["comm"]

    def test_profile_reports_measured_process_efficiency(
        self, tmp_path, capsys
    ):
        assert main(["profile", str(tmp_path / "p.json"), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "process efficiency" in out
        assert "measured ProcessBackend sweep" in out

    def test_simulate_with_v2_cache_uses_measured_ratio(
        self, tmp_path, capsys
    ):
        cache = tmp_path / "sim_cache"
        rc = main(
            ["cache", str(cache), "--dataset", "twitch", "--nnz", "2000",
             "--codec", "zlib"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(
            ["simulate", "twitch", "--shards-per-gpu", "4",
             "--shard-cache", str(cache)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "staging priced at measured codec ratio" in out
        assert "zlib manifest" in out

    def test_simulate_with_missing_cache_fails_cleanly(
        self, tmp_path, capsys
    ):
        rc = main(
            ["simulate", "twitch", "--shards-per-gpu", "4",
             "--shard-cache", str(tmp_path / "missing.npz")]
        )
        assert rc == 2
        assert "--shard-cache" in capsys.readouterr().out
