"""Tests for CP-ALS over multiple MTTKRP backends."""

import numpy as np
import pytest

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.cpd.als import cp_als
from repro.cpd.norms import factor_match_score
from repro.errors import ConvergenceError, ReproError
from repro.tensor.coo import SparseTensorCOO
from repro.tensor.generate import lowrank_coo


class TestConvergence:
    def test_fit_is_monotone_nondecreasing(self, fitted_tensor):
        res = cp_als(fitted_tensor, rank=4, n_iters=15, tol=0.0, seed=0)
        fits = np.array(res.fits)
        # ALS cannot decrease the objective; allow float jitter
        assert (np.diff(fits) > -1e-8).all()

    def test_good_fit_on_lowrank_data(self, fitted_tensor):
        res = cp_als(fitted_tensor, rank=4, n_iters=30, seed=0)
        assert res.final_fit > 0.9

    def test_tolerance_stops_early(self, fitted_tensor):
        res = cp_als(fitted_tensor, rank=4, n_iters=100, tol=1e-3, seed=0)
        assert res.converged
        assert res.n_iters < 100

    def test_model_shape(self, fitted_tensor):
        res = cp_als(fitted_tensor, rank=3, n_iters=5, seed=0)
        assert res.model.shape == fitted_tensor.shape
        assert res.model.rank == 3
        # arrange() guarantees descending weights
        assert (np.diff(res.model.weights) <= 1e-12).all()

    def test_exact_recovery_of_noiseless_lowrank(self):
        t = lowrank_coo((15, 12, 10), 900, rank=2, noise=0.0, seed=4)
        res = cp_als(t, rank=2, n_iters=60, tol=1e-12, seed=1)
        assert res.final_fit > 0.99

    def test_callback_streams_fits_and_stops_cooperatively(
        self, fitted_tensor
    ):
        """The service hook: callback sees every sweep's fit, and
        returning True stops the run at the sweep boundary."""
        seen = []

        def watch(it, fit):
            seen.append((it, fit))
            return len(seen) >= 3

        res = cp_als(
            fitted_tensor, rank=4, n_iters=50, tol=0.0, seed=0, callback=watch
        )
        assert res.n_iters == 3
        assert not res.converged  # stopped, not converged
        assert seen == [(i, f) for i, f in enumerate(res.fits)]
        # the completed sweeps match an uninterrupted run exactly
        full = cp_als(fitted_tensor, rank=4, n_iters=50, tol=0.0, seed=0)
        assert res.fits == pytest.approx(full.fits[:3], rel=0, abs=0)

    def test_convergence_wins_over_callback(self, fitted_tensor):
        # tol stops before the callback would: converged stays True
        res = cp_als(
            fitted_tensor, rank=4, n_iters=100, tol=1e-3, seed=0,
            callback=lambda it, fit: False,
        )
        assert res.converged


class TestBackends:
    def test_amped_backend_matches_reference_fit(self, fitted_tensor):
        ref = cp_als(fitted_tensor, rank=3, n_iters=8, tol=0.0, seed=5)
        ex = AmpedMTTKRP(
            fitted_tensor, AmpedConfig(n_gpus=4, rank=3, shards_per_gpu=2)
        )
        via_amped = cp_als(
            fitted_tensor, rank=3, n_iters=8, tol=0.0, seed=5, mttkrp=ex.mttkrp
        )
        assert via_amped.fits == pytest.approx(ref.fits, rel=1e-9)
        assert (
            factor_match_score(
                [np.asarray(f) for f in ref.model.factors],
                [np.asarray(f) for f in via_amped.model.factors],
            )
            == pytest.approx(1.0)
        )

    def test_custom_initial_factors(self, fitted_tensor, make_factors):
        init = make_factors(fitted_tensor.shape, rank=3, seed=8)
        res = cp_als(fitted_tensor, rank=3, n_iters=3, factors=init, tol=0.0)
        assert res.n_iters == 3


class TestErrors:
    def test_zero_tensor_rejected(self):
        t = SparseTensorCOO(np.empty((0, 2), dtype=np.int64), np.empty(0), (3, 3))
        with pytest.raises(ConvergenceError):
            cp_als(t, rank=2)

    def test_bad_args(self, fitted_tensor):
        with pytest.raises(ReproError):
            cp_als(fitted_tensor, rank=0)
        with pytest.raises(ReproError):
            cp_als(fitted_tensor, rank=2, n_iters=0)
        with pytest.raises(ReproError):
            cp_als(fitted_tensor, rank=2, factors=[np.zeros((2, 2))])
