"""Tests for the ALS iteration timing model."""

import pytest

from repro.bench.harness import model_workloads, run_amped_model
from repro.core.config import AmpedConfig
from repro.cpd.timing import als_iteration_cost
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import RTX6000_ADA


@pytest.fixture(scope="module")
def amazon_cost():
    cfg = AmpedConfig()
    wl = model_workloads(cfg)["amazon"]
    res = run_amped_model(wl, cfg)
    return als_iteration_cost(res, wl, cfg, KernelCostModel(), RTX6000_ADA), res


class TestALSIterationCost:
    def test_components_positive(self, amazon_cost):
        cost, _ = amazon_cost
        assert cost.mttkrp > 0
        assert cost.factor_update > 0
        assert cost.fit_evaluation > 0

    def test_mttkrp_dominates(self, amazon_cost):
        """The paper's premise: MTTKRP is the bottleneck of CP-ALS."""
        cost, _ = amazon_cost
        assert cost.mttkrp > cost.factor_update
        assert cost.mttkrp > cost.fit_evaluation
        assert cost.mttkrp / cost.total > 0.5

    def test_total_is_sum(self, amazon_cost):
        cost, _ = amazon_cost
        assert cost.total == pytest.approx(
            cost.mttkrp + cost.factor_update + cost.fit_evaluation
        )

    def test_decomposition_time_scales(self, amazon_cost):
        cost, _ = amazon_cost
        assert cost.decomposition_time(10) == pytest.approx(10 * cost.total)
        assert cost.decomposition_time(0) == 0.0
        with pytest.raises(ValueError):
            cost.decomposition_time(-1)

    def test_mttkrp_matches_simulation(self, amazon_cost):
        cost, res = amazon_cost
        assert cost.mttkrp == res.total_time
