"""Tests for Kruskal tensors."""

import numpy as np
import pytest

from repro.cpd.ktensor import KruskalTensor
from repro.errors import TensorFormatError
from repro.tensor.coo import SparseTensorCOO


@pytest.fixture
def model(rng):
    factors = tuple(rng.random((s, 3)) for s in (5, 4, 6))
    weights = np.array([2.0, 1.0, 0.5])
    return KruskalTensor(weights, factors)


class TestBasics:
    def test_shape_rank(self, model):
        assert model.shape == (5, 4, 6)
        assert model.rank == 3
        assert model.nmodes == 3

    def test_full_matches_manual_sum(self, model):
        dense = model.full()
        manual = np.zeros(model.shape)
        for r in range(model.rank):
            manual += model.weights[r] * np.einsum(
                "i,j,k->ijk",
                model.factors[0][:, r],
                model.factors[1][:, r],
                model.factors[2][:, r],
            )
        assert np.allclose(dense, manual)

    def test_values_at_matches_full(self, model, rng):
        coords = np.column_stack(
            [rng.integers(0, s, 20) for s in model.shape]
        ).astype(np.int64)
        vals = model.values_at(coords)
        dense = model.full()
        assert np.allclose(vals, dense[tuple(coords.T)])

    def test_norm_matches_dense(self, model):
        assert model.norm() == pytest.approx(np.linalg.norm(model.full()))

    def test_arrange_sorts_weights(self, rng):
        factors = tuple(rng.random((s, 3)) for s in (4, 4))
        kt = KruskalTensor(np.array([1.0, 5.0, 2.0]), factors).arrange()
        assert kt.weights.tolist() == [5.0, 2.0, 1.0]

    def test_validation(self, rng):
        with pytest.raises(TensorFormatError):
            KruskalTensor(np.ones((2, 2)), (rng.random((3, 2)),))
        with pytest.raises(TensorFormatError):
            KruskalTensor(np.ones(2), (rng.random((3, 3)),))
        with pytest.raises(TensorFormatError):
            KruskalTensor(np.ones(2), ())


class TestSparseFit:
    def test_innerprod_matches_dense(self, model, rng):
        coords = np.column_stack(
            [rng.integers(0, s, 30) for s in model.shape]
        ).astype(np.int64)
        t = SparseTensorCOO(coords, rng.random(30), model.shape).deduplicated()
        dense_inner = float(np.sum(t.to_dense() * model.full()))
        assert model.innerprod_sparse(t) == pytest.approx(dense_inner)

    def test_perfect_fit_is_one(self, model):
        t = SparseTensorCOO.from_dense(model.full())
        assert model.fit_sparse(t) == pytest.approx(1.0, abs=1e-9)

    def test_fit_matches_dense_residual(self, model, rng):
        coords = np.column_stack(
            [rng.integers(0, s, 40) for s in model.shape]
        ).astype(np.int64)
        t = SparseTensorCOO(coords, rng.random(40), model.shape).deduplicated()
        fit = model.fit_sparse(t)
        dense_resid = np.linalg.norm(t.to_dense() - model.full())
        expected = 1.0 - dense_resid / t.norm()
        assert fit == pytest.approx(expected, abs=1e-9)

    def test_fit_shape_mismatch(self, model):
        t = SparseTensorCOO(np.array([[0, 0]]), np.array([1.0]), (2, 2))
        with pytest.raises(TensorFormatError):
            model.fit_sparse(t)

    def test_fit_zero_tensor_rejected(self, model):
        t = SparseTensorCOO(
            np.empty((0, 3), dtype=np.int64), np.empty(0), model.shape
        )
        with pytest.raises(TensorFormatError):
            model.fit_sparse(t)

    def test_precomputed_norm(self, model, rng):
        coords = np.column_stack(
            [rng.integers(0, s, 25) for s in model.shape]
        ).astype(np.int64)
        t = SparseTensorCOO(coords, rng.random(25), model.shape).deduplicated()
        assert model.fit_sparse(t) == pytest.approx(
            model.fit_sparse(t, tensor_norm=t.norm())
        )
