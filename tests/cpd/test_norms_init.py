"""Tests for normalization, factor matching, and initialization."""

import numpy as np
import pytest

from repro.cpd.init import init_factors
from repro.cpd.norms import factor_match_score, normalize_columns
from repro.errors import ReproError, TensorFormatError


class TestNormalizeColumns:
    def test_unit_norms(self, rng):
        m, norms = normalize_columns(rng.random((10, 4)))
        assert np.allclose(np.linalg.norm(m, axis=0), 1.0)
        assert (norms > 0).all()

    def test_reconstruction(self, rng):
        a = rng.random((6, 3))
        m, norms = normalize_columns(a)
        assert np.allclose(m * norms, a)

    def test_zero_column_safe(self):
        a = np.zeros((4, 2))
        a[:, 1] = 2.0
        m, norms = normalize_columns(a)
        assert norms[0] == 1.0
        assert np.allclose(m[:, 0], 0.0)

    def test_non_matrix_rejected(self):
        with pytest.raises(TensorFormatError):
            normalize_columns(np.zeros(3))


class TestFactorMatchScore:
    def test_identical_solutions_score_one(self, rng):
        factors = [rng.random((s, 3)) for s in (5, 6)]
        assert factor_match_score(factors, factors) == pytest.approx(1.0)

    def test_permutation_invariant(self, rng):
        factors = [rng.random((s, 3)) for s in (5, 6)]
        perm = [f[:, [2, 0, 1]] for f in factors]
        assert factor_match_score(factors, perm) == pytest.approx(1.0)

    def test_sign_and_scale_invariant(self, rng):
        factors = [rng.random((s, 2)) for s in (5, 6)]
        flipped = [f * np.array([-1.0, 3.0]) for f in factors]
        assert factor_match_score(factors, flipped) == pytest.approx(1.0)

    def test_random_pairs_score_below_one(self, rng):
        a = [rng.random((50, 3)) for _ in range(2)]
        b = [rng.random((50, 3)) for _ in range(2)]
        assert factor_match_score(a, b) < 0.999

    def test_weights_penalty(self, rng):
        factors = [rng.random((s, 2)) for s in (5, 6)]
        w = np.array([1.0, 1.0])
        same = factor_match_score(
            factors, factors, weights_a=w, weights_b=w
        )
        diff = factor_match_score(
            factors, factors, weights_a=w, weights_b=np.array([10.0, 1.0])
        )
        assert same > diff

    def test_mode_count_mismatch(self, rng):
        with pytest.raises(TensorFormatError):
            factor_match_score([rng.random((3, 2))], [rng.random((3, 2))] * 2)


class TestInitFactors:
    def test_random_shapes(self, small_tensor):
        factors = init_factors(small_tensor, 5, seed=0)
        assert len(factors) == 3
        for m, f in enumerate(factors):
            assert f.shape == (small_tensor.shape[m], 5)

    def test_random_deterministic(self, small_tensor):
        a = init_factors(small_tensor, 4, seed=3)
        b = init_factors(small_tensor, 4, seed=3)
        for fa, fb in zip(a, b):
            assert np.allclose(fa, fb)

    def test_nvecs_shapes(self, small_tensor):
        factors = init_factors(small_tensor, 3, method="nvecs", seed=0)
        for m, f in enumerate(factors):
            assert f.shape == (small_tensor.shape[m], 3)

    def test_nvecs_columns_orthonormalish(self, small_tensor):
        """Leading singular vectors should be near-orthonormal."""
        factors = init_factors(small_tensor, 2, method="nvecs", seed=0)
        gram = factors[0].T @ factors[0]
        assert np.allclose(gram, np.eye(2), atol=1e-6)

    def test_invalid_args(self, small_tensor):
        with pytest.raises(ReproError):
            init_factors(small_tensor, 0)
        with pytest.raises(ReproError):
            init_factors(small_tensor, 2, method="alchemy")
