"""Quickstart: sparse MTTKRP and CP decomposition with AMPED.

Run:  python examples/quickstart.py

Builds a small synthetic sparse tensor, computes MTTKRP along every mode
through the AMPED multi-GPU executor (functional NumPy execution + simulated
4x RTX 6000 Ada timing), verifies against the reference implementation, and
finishes with a CP-ALS decomposition.
"""

import numpy as np

from repro import AmpedConfig, AmpedMTTKRP
from repro.cpd import cp_als
from repro.tensor.generate import lowrank_coo, zipf_coo
from repro.tensor.reference import mttkrp_coo_reference
from repro.util.humanize import format_seconds


def main() -> None:
    # --- 1. a sparse tensor with realistic index skew -------------------
    tensor = zipf_coo(
        shape=(3000, 2000, 1500),
        nnz=200_000,
        exponents=(1.0, 0.9, 1.1),
        seed=0,
    )
    print(f"tensor: {tensor}")

    # --- 2. the AMPED executor on the paper's default platform ----------
    config = AmpedConfig(n_gpus=4, rank=32)  # §5.1.5 defaults
    executor = AmpedMTTKRP(tensor, config, name="quickstart")

    rng = np.random.default_rng(1)
    factors = [rng.random((s, config.rank)) for s in tensor.shape]

    # functional MTTKRP along every mode, checked against the oracle
    for mode in range(tensor.nmodes):
        out = executor.mttkrp(factors, mode)
        ref = mttkrp_coo_reference(tensor, factors, mode)
        assert np.allclose(out, ref)
        print(f"mode {mode}: MTTKRP output {out.shape}, matches reference")

    # --- 3. simulated execution time on 4x RTX 6000 Ada -----------------
    result = executor.simulate()
    print(
        f"\nsimulated iteration time on {result.n_gpus} GPUs: "
        f"{format_seconds(result.total_time)}"
    )
    for key, share in result.breakdown().items():
        print(f"  {key:<15} {share:6.1%}")
    print(f"  per-GPU compute imbalance: {result.compute_overhead():.2%}")

    # --- 4. full CP decomposition through the AMPED backend -------------
    data = lowrank_coo((400, 300, 200), 40_000, rank=8, noise=0.01, seed=2)
    ex2 = AmpedMTTKRP(data, AmpedConfig(n_gpus=4, rank=8), name="cpd-demo")
    als = cp_als(data, rank=8, n_iters=20, seed=3, mttkrp=ex2.mttkrp)
    print(
        f"\nCP-ALS: fit={als.final_fit:.4f} after {als.n_iters} iterations "
        f"({format_seconds(als.wall_seconds)} wall)"
    )


if __name__ == "__main__":
    main()
