"""Scenario: sizing a multi-GPU node for a billion-scale tensor workload.

Run:  python examples/scaling_study.py

Uses the model-scale simulator to answer a capacity-planning question the
paper's Figure 9 speaks to: how does AMPED's iteration time scale with GPU
count on each billion-scale dataset, where does communication erode the
scaling, and which baseline would even run the workload on one device?
"""

from repro.baselines import make_backend
from repro.bench.harness import run_amped_model
from repro.bench.report import render_table
from repro.core.config import AmpedConfig
from repro.datasets import ALL_PROFILES
from repro.datasets.workload import paper_workload
from repro.simgpu.kernel import KernelCostModel
from repro.util.humanize import format_seconds

GPU_COUNTS = (1, 2, 3, 4)


def main() -> None:
    cost = KernelCostModel()

    rows = []
    for profile in ALL_PROFILES:
        times = {}
        comm_share = {}
        for m in GPU_COUNTS:
            cfg = AmpedConfig(n_gpus=m)
            wl = paper_workload(profile, cfg, cost)
            res = run_amped_model(wl, cfg)
            times[m] = res.total_time
            bd = res.breakdown()
            comm_share[m] = bd["host_gpu_comm"] + bd["gpu_gpu_comm"]
        rows.append(
            [
                profile.name,
                *(format_seconds(times[m]) for m in GPU_COUNTS),
                f"{times[1] / times[4]:.2f}x",
                f"{comm_share[4]:.0%}",
            ]
        )
    print(
        render_table(
            ["tensor", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs",
             "speedup@4", "comm share@4"],
            rows,
            title="AMPED scaling on the paper platform (model scale)",
        )
    )

    # Which single-GPU baseline can even hold each tensor?
    print("\nsingle-device feasibility (48 GB RTX 6000 Ada):")
    for profile in ALL_PROFILES:
        cfg = AmpedConfig()
        wl = paper_workload(profile, cfg, cost)
        outcomes = []
        for name in ("blco", "mm-csf", "hicoo-gpu", "flycoo-gpu"):
            r = make_backend(name, workload=wl, cost=cost).simulate()
            outcomes.append(f"{name}: {'ok' if r.ok else 'FAILS'}")
        print(f"  {profile.name:<9} " + "  ".join(outcomes))
    print(
        "\n(BLCO survives everywhere by streaming from host memory; AMPED "
        "gets the same reach plus multi-GPU bandwidth.)"
    )


if __name__ == "__main__":
    main()
