"""Walkthrough: the always-on multi-tenant decomposition service.

Run:  python examples/service_jobs.py

`repro.serve` turns the engine into a long-lived job server
(`docs/service.md`): many concurrent users submit CP-ALS jobs, each with
its own `AmpedConfig`; a bounded priority queue applies backpressure; the
cost model does admission control; jobs streaming the same shard cache
share one open source through a refcounted pool; progress streams
per-sweep; cancellation is cooperative; shutdown drains.

This example drives the HTTP-free core (`DecompositionService`) directly
— no sockets, so it runs anywhere — through the service's whole story:
mixed concurrent tenants, digest-checked bit-identity with direct runs,
an admission rejection, a mid-run cancellation, and the graceful drain.
`repro serve HOST:PORT` + `python -m repro.serve.client` expose exactly
this over HTTP (the CI service leg exercises that path).
"""

import tempfile
import time
from pathlib import Path

from repro.core.amped import AmpedMTTKRP
from repro.core.config import AmpedConfig
from repro.cpd.als import cp_als
from repro.datasets.profiles import profile_by_name
from repro.datasets.synthetic import materialize
from repro.errors import AdmissionError
from repro.serve import DecompositionService, factor_digest
from repro.tensor.io import write_shard_cache_v2

RANK = 4
ITERS = 5
SEED = 11


def wait_done(service, job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while not job.done:
        if time.monotonic() > deadline:
            raise SystemExit(f"FAIL: job {job.id} stuck in {job.state}")
        time.sleep(0.02)
    return service.get(job.id).snapshot()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # --- 1. a shard cache two tenants will share ----------------------
        tensor = materialize(profile_by_name("twitch"), 2000, seed=3)
        cache = write_shard_cache_v2(tensor, tmp / "shared", codec="zlib")
        print(f"shared v2 cache: {cache.name} (nnz={tensor.nnz})")

        service = DecompositionService(max_jobs=2, queue_depth=8)
        try:
            # --- 2. mixed concurrent tenants ------------------------------
            # two out-of-core jobs over the SAME cache (one open source via
            # the pool) racing a third, purely in-memory synthetic job
            pooled_a = service.submit({
                "shard_cache": str(cache), "rank": RANK,
                "n_iters": ITERS, "seed": SEED,
            })
            pooled_b = service.submit({
                "shard_cache": str(cache), "rank": RANK,
                "n_iters": ITERS, "seed": SEED,
                "config": {"backend": "thread", "workers": 2},
            })
            inmem = service.submit({
                "dataset": "twitch", "nnz": 1200, "rank": 3,
                "n_iters": ITERS, "seed": 5, "priority": 1,
            })
            while service.pool.stats() == {} and not pooled_a.done:
                time.sleep(0.01)
            print(f"pool while jobs run: {service.pool.stats()}")

            snaps = [wait_done(service, j)
                     for j in (pooled_a, pooled_b, inmem)]
            for s in snaps:
                print(
                    f"job {s['id']}: {s['state']} after {s['iterations']} "
                    f"sweeps, fit {s['result']['final_fit']:.6f}, "
                    f"backend {s['result']['resolved_backend']}"
                )

            # --- 3. digests == direct runs: tenancy never changes bits ----
            oc = AmpedConfig(rank=RANK, out_of_core=True,
                             shard_cache=str(cache))
            with AmpedMTTKRP.from_shard_cache(cache, oc) as ex:
                direct = cp_als(ex.tensor, RANK, mttkrp=ex.mttkrp,
                                n_iters=ITERS, seed=SEED)
            want = factor_digest(direct)
            for s in snaps[:2]:
                if s["result"]["result_digest"] != want:
                    raise SystemExit("FAIL: service digest diverged")
            print(f"pooled jobs bit-identical to direct run ({want[:12]}…)")
            if service.pool.stats() != {}:
                raise SystemExit("FAIL: pool leaked a source")

            # --- 4. admission: oversized jobs never start -----------------
            try:
                service.submit({"dataset": "twitch", "nnz": 10**9})
            except AdmissionError as exc:
                print(f"oversized job rejected up front: {exc}")
            else:
                raise SystemExit("FAIL: admission let a 24 GB job through")

            # --- 5. cooperative cancellation at a sweep boundary ----------
            slow = service.submit({
                "nnz": 1500, "rank": RANK, "n_iters": 500, "tol": 0.0,
            })
            while len(slow.snapshot()["fits"]) < 2:
                time.sleep(0.01)
            service.cancel(slow.id)
            snap = wait_done(service, slow)
            print(
                f"cancelled mid-run: state={snap['state']} after "
                f"{snap['iterations']}/500 sweeps (fit stream kept)"
            )
            if snap["state"] != "cancelled" or snap["iterations"] >= 500:
                raise SystemExit("FAIL: cancellation did not stop the job")
        finally:
            # --- 6. graceful shutdown: accepted work drains ---------------
            service.stop(drain=True)
        print(f"drained and stopped: {service.stats()}")


if __name__ == "__main__":
    main()
