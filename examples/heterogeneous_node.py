"""Scenario: AMPED on a heterogeneous node (the paper's §6 future work).

Run:  python examples/heterogeneous_node.py

The paper's conclusion proposes adapting the algorithm to platforms mixing
CPUs, GPUs, and FPGAs. The sharding's task independence makes this a pure
balancing problem: this example runs the billion-scale Amazon workload on
mixed device sets (Ada + A100, GPUs + host CPU as a compute device) with
throughput-weighted shard assignment, and shows when an extra weak device
pays off.
"""

from repro.bench.report import render_table
from repro.core.config import AmpedConfig
from repro.core.hetero import device_speeds, hetero_workload, simulate_hetero
from repro.datasets.workload import paper_workload
from repro.simgpu.device import GPUSpec
from repro.simgpu.hetero import CPU_AS_DEVICE, HeteroPlatform
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.presets import (
    A100_40GB,
    EPYC_9654_DUAL,
    PCIE_GEN4_X16,
    P2P_PCIE,
    RTX6000_ADA,
)
from repro.util.humanize import format_seconds

CPU_DEV = CPU_AS_DEVICE(EPYC_9654_DUAL)

NODES: dict[str, list[GPUSpec]] = {
    "4x Ada (paper)": [RTX6000_ADA] * 4,
    "2x Ada + 2x A100": [RTX6000_ADA, A100_40GB, RTX6000_ADA, A100_40GB],
    "3x Ada + host CPU": [RTX6000_ADA] * 3 + [CPU_DEV],
    "2x Ada only": [RTX6000_ADA] * 2,
    "2x Ada + host CPU": [RTX6000_ADA] * 2 + [CPU_DEV],
}


def main() -> None:
    cost = KernelCostModel()
    rows = []
    for label, specs in NODES.items():
        platform = HeteroPlatform(
            device_specs=specs,
            host=EPYC_9654_DUAL,
            host_links=[PCIE_GEN4_X16],
            p2p_link=P2P_PCIE,
        )
        cfg = AmpedConfig(n_gpus=len(specs))
        base = paper_workload("amazon", cfg, cost)
        speeds = device_speeds(platform, cost, base, rank=cfg.rank)
        wl = hetero_workload(base, speeds)
        res = simulate_hetero(platform, cost, wl, cfg)
        shares = wl.modes[0].gpu_nnz() / wl.nnz
        rows.append(
            [
                label,
                format_seconds(res.total_time),
                " / ".join(f"{s:.0%}" for s in shares),
                f"{res.compute_overhead():.1%}",
            ]
        )
    print(
        render_table(
            ["node", "amazon iter time", "nnz share per device", "imbalance"],
            rows,
            title="AMPED on heterogeneous nodes (model scale, Amazon 1.7B nnz)",
        )
    )
    print(
        "\nObservations: behind identical 64 GB/s PCIe links the A100s are "
        "stream-bound like the Adas, so the weighted split stays even and "
        "the mixed node ties the paper platform — the link, not the GPU, "
        "is the resource that matters. A host-CPU helper device takes a "
        "minority share and pays off when the node is short on GPUs "
        "(compare the 2x Ada rows); note the compute-imbalance column is "
        "expected to be large on mixed nodes, since a slower device spends "
        "more compute time on fewer nonzeros while *finishing* on time."
    )


if __name__ == "__main__":
    main()
