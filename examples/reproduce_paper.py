"""Regenerate every table and figure of the paper's evaluation section.

Run:  python examples/reproduce_paper.py [experiment ...]

With no arguments, reproduces Table 1, Table 3, and Figures 5-10 plus the
abstract's headline numbers, printing each in the paper's row/series format.
Pass experiment names (e.g. ``fig5 fig9``) to run a subset.
"""

import sys

from repro.bench import experiments

EXPERIMENTS = {
    "table1": experiments.table1,
    "table3": experiments.table3,
    "fig5": experiments.fig5,
    "fig6": experiments.fig6,
    "fig7": experiments.fig7,
    "fig8": experiments.fig8,
    "fig9": experiments.fig9,
    "fig10": experiments.fig10,
    "headline": experiments.headline,
}


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    for name in names:
        result = EXPERIMENTS[name]()
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
