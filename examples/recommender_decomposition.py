"""Domain scenario: decomposing an Amazon-style review tensor.

Run:  python examples/recommender_decomposition.py

The paper's motivating workload is tensor decomposition of billion-scale
recommender data (Amazon reviews: user x item x word). This example builds a
scaled functional instance of the Amazon profile, runs CP-ALS through the
AMPED backend, and inspects the learned components — then projects what the
same decomposition costs per iteration at the full 1.7 B-nonzero scale on
the paper's 4-GPU platform.
"""

import numpy as np

from repro.core import AmpedConfig, AmpedMTTKRP
from repro.cpd import cp_als
from repro.bench.harness import run_amped_model
from repro.datasets import AMAZON, materialize
from repro.datasets.workload import paper_workload
from repro.simgpu.kernel import KernelCostModel
from repro.util.humanize import format_count, format_seconds

RANK = 16


def main() -> None:
    # --- scaled functional instance of the Amazon profile ---------------
    tensor = materialize(AMAZON, 150_000, seed=0)
    print(
        f"Amazon (scaled): shape={tensor.shape}, nnz={format_count(tensor.nnz)} "
        f"(full dataset: {format_count(AMAZON.nnz)})"
    )

    executor = AmpedMTTKRP(
        tensor, AmpedConfig(n_gpus=4, rank=RANK), name="amazon-scaled"
    )
    result = cp_als(tensor, rank=RANK, n_iters=15, seed=1, mttkrp=executor.mttkrp)
    print(f"CP-ALS fit after {result.n_iters} iterations: {result.final_fit:.4f}")

    # --- inspect components: top "users"/"items"/"words" per component --
    model = result.model
    mode_names = ("user", "item", "word")
    print("\nstrongest components (top indices per mode):")
    for r in range(min(3, model.rank)):
        tops = []
        for m, name in enumerate(mode_names):
            col = np.abs(model.factors[m][:, r])
            tops.append(f"{name}s {np.argsort(col)[-3:][::-1].tolist()}")
        print(f"  component {r} (weight {model.weights[r]:.2f}): " + "; ".join(tops))

    # --- per-iteration MTTKRP cost at the true billion scale ------------
    cfg = AmpedConfig(n_gpus=4, rank=RANK)
    workload = paper_workload(AMAZON, cfg, KernelCostModel())
    sim = run_amped_model(workload, cfg)
    per_iter = sim.total_time
    print(
        f"\nprojected MTTKRP time per ALS iteration at {format_count(AMAZON.nnz)} "
        f"nonzeros on 4x RTX 6000 Ada: {format_seconds(per_iter)}"
    )
    print(
        f"projected time for a 25-iteration decomposition: "
        f"{format_seconds(25 * per_iter)} (MTTKRP portion)"
    )


if __name__ == "__main__":
    main()
