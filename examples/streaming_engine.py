"""Walkthrough: the streaming batched execution engine.

Run:  python examples/streaming_engine.py

The eager path materializes and reduces each tensor shard in one shot, so
the transient working set scales with the shard size. The streaming engine
(:class:`repro.engine.StreamingExecutor`) instead slices every shard into
segment-aligned element batches and reduces them one at a time — bounding
the working set at ``batch_size`` nonzeros regardless of tensor size, while
staying *bit-identical* to the eager result for every batch size and worker
count.

Batch-size tuning (rule of thumb)
---------------------------------
The transient footprint per batch is roughly
``batch_size * (rank * 8 + nmodes * 8 + 8)`` bytes (the contribution block
plus the index/value slice). Pick the largest batch that keeps this inside
the cache level you target:

* ``batch_size=None``  — eager whole-shard batches; fastest when shards are
  already cache-sized (the default).
* ``~4096-65536``      — keeps rank-32 streaming inside a few MiB of L2/L3;
  usually as fast as (or faster than) eager because the contribution block
  stays cache-resident.
* ``< ~1024``          — per-batch NumPy dispatch overhead starts to show;
  only worth it under severe memory pressure.

Execution backends
------------------
``backend=`` selects where batch reductions run: ``"serial"`` (calling
thread), ``"thread"`` (persistent GIL-releasing thread pool), or
``"process"`` (persistent process pool whose workers attach to the element
data — shared memory for resident tensors, the mmap cache for out-of-core
runs). ``prefetch=True`` double-buffers batch delivery on a background
thread. Partial results are applied in deterministic order, so the output
never depends on the backend or its scheduling.
"""

import time

import numpy as np

from repro import AmpedConfig, AmpedMTTKRP, StreamingExecutor
from repro.partition.plan import build_partition_plan
from repro.tensor.generate import zipf_coo
from repro.util.humanize import format_bytes, format_seconds


def main() -> None:
    # --- 1. a skewed synthetic tensor -----------------------------------
    tensor = zipf_coo(
        shape=(4000, 2500, 1800), nnz=250_000, exponents=1.0, seed=0
    )
    rank = 32
    rng = np.random.default_rng(1)
    factors = [rng.random((s, rank)) for s in tensor.shape]
    print(f"tensor: {tensor}")

    # --- 2. eager vs streaming granularity ------------------------------
    plan = build_partition_plan(tensor, 4, shards_per_gpu=8)
    eager = StreamingExecutor(plan)  # one batch per shard
    for batch_size in (None, 32_768, 4_096, 512):
        engine = StreamingExecutor(plan, batch_size=batch_size)
        t0 = time.perf_counter()
        outs = engine.mttkrp_all_modes(factors)
        dt = time.perf_counter() - t0
        # bit-identical to eager: segment-aligned batches never re-associate
        assert all(
            np.array_equal(o, e)
            for o, e in zip(outs, eager.mttkrp_all_modes(factors))
        )
        batches = sum(engine.n_batches(m) for m in range(tensor.nmodes))
        footprint = (batch_size or max(
            s.nnz for mp in plan.modes for s in mp.shards
        )) * (rank * 8 + tensor.nmodes * 8 + 8)
        print(
            f"batch_size={str(batch_size):>6}: {batches:5d} batches, "
            f"~{format_bytes(footprint):>9} working set, "
            f"{format_seconds(dt)} for all modes (bit-identical)"
        )

    # --- 3. pluggable execution backends --------------------------------
    # Parallel backends pay off when batches are large enough that the
    # kernels dominate the per-batch dispatch (threads release the GIL;
    # processes sidestep it entirely by attaching to shared memory). At
    # this small functional scale the serial path usually wins — the knobs
    # exist for out-of-core-sized batches. Backends persist across calls:
    # create the executor once, reuse it, close it (context manager).
    want = eager.mttkrp_all_modes(factors)
    for backend, workers, prefetch in (
        ("serial", 1, False),
        ("serial", 1, True),   # double-buffered staging
        ("thread", 2, False),
        ("process", 2, False),  # shared-memory workers
    ):
        with StreamingExecutor(
            plan, batch_size=16_384, backend=backend, workers=workers,
            prefetch=prefetch,
        ) as engine:
            t0 = time.perf_counter()
            outs = engine.mttkrp_all_modes(factors)
            dt = time.perf_counter() - t0
        assert all(np.array_equal(o, e) for o, e in zip(outs, want))
        label = f"{backend}(workers={workers}, prefetch={prefetch})"
        print(f"{label:<42}: {format_seconds(dt)} (bit-identical)")

    # --- 4. the same knobs through AmpedMTTKRP + the simulator ----------
    config = AmpedConfig(
        n_gpus=4, rank=rank, batch_size=16_384, backend="thread", workers=2
    )
    executor = AmpedMTTKRP(tensor, config, name="streaming-demo")
    out = executor.mttkrp(factors, 0)
    assert np.array_equal(out, eager.mttkrp(factors, 0))
    result = executor.simulate()
    executor.close()
    print(
        f"\nsimulated iteration (batch-granularity timing, one launch per "
        f"batch): {format_seconds(result.total_time)} on {result.n_gpus} GPUs"
    )
    for key, share in result.breakdown().items():
        print(f"  {key:<15} {share:6.1%}")


if __name__ == "__main__":
    main()
