"""Scenario: evaluating AMPED on a different GPU platform (A100 vs Ada).

Run:  python examples/custom_platform.py

The simulator is parameterized by device specs, so "what if we ran on A100s
with NVLink-class interconnect?" is a configuration change. This example
compares the paper's RTX 6000 Ada node against an A100 node with a faster
P2P fabric and shows how the bottleneck (and the FLYCOO crossover on
Twitch) moves.
"""

from repro.baselines import make_backend
from repro.bench.report import render_table
from repro.core.config import AmpedConfig
from repro.core.simulate import simulate_amped
from repro.datasets import ALL_PROFILES
from repro.datasets.workload import paper_workload
from repro.simgpu.device import GPUSpec
from repro.simgpu.interconnect import Link
from repro.simgpu.kernel import KernelCostModel
from repro.simgpu.platform import MultiGPUPlatform
from repro.simgpu.presets import (
    A100_40GB,
    EPYC_9654_DUAL,
    PCIE_GEN4_X16,
    P2P_PCIE,
    RTX6000_ADA,
)
from repro.util.humanize import format_seconds

# A100s in an NVLink-equipped server: much faster GPU-GPU fabric.
NVLINK = Link(name="NVLink 3", bandwidth=200e9, latency=5e-6)

PLATFORMS: dict[str, tuple[GPUSpec, Link, Link]] = {
    "4x RTX 6000 Ada (paper)": (RTX6000_ADA, PCIE_GEN4_X16, P2P_PCIE),
    "4x A100-40GB + NVLink": (A100_40GB, PCIE_GEN4_X16, NVLINK),
}


def build(gpu: GPUSpec, host_link: Link, p2p: Link) -> MultiGPUPlatform:
    return MultiGPUPlatform(
        gpu_spec=gpu,
        n_gpus=4,
        host=EPYC_9654_DUAL,
        host_link=host_link,
        p2p_link=p2p,
    )


def main() -> None:
    cost = KernelCostModel()
    cfg = AmpedConfig()

    rows = []
    for profile in ALL_PROFILES:
        wl = paper_workload(profile, cfg, cost)
        cells = [profile.name]
        for label, (gpu, hlink, plink) in PLATFORMS.items():
            res = simulate_amped(build(gpu, hlink, plink), cost, wl, cfg)
            bd = res.breakdown()
            cells.append(
                f"{format_seconds(res.total_time)} (p2p {bd['gpu_gpu_comm']:.0%})"
            )
        rows.append(cells)
    print(
        render_table(
            ["tensor", *PLATFORMS.keys()],
            rows,
            title="AMPED iteration time by platform (model scale)",
        )
    )

    # Does a faster fabric flip the Twitch verdict vs FLYCOO-GPU?
    print("\nTwitch: AMPED vs FLYCOO-GPU by fabric")
    wl = paper_workload("twitch", cfg, cost)
    for label, (gpu, hlink, plink) in PLATFORMS.items():
        amped = simulate_amped(build(gpu, hlink, plink), cost, wl, cfg)
        fly = make_backend(
            "flycoo-gpu", workload=wl, cost=cost,
            platform=build(gpu, hlink, plink),
        )
        # FLYCOO is single-GPU: reuse device 0 of the same platform spec.
        fly_res = fly.simulate()
        verdict = (
            "FLYCOO wins"
            if fly_res.ok and fly_res.total_time < amped.total_time
            else "AMPED wins"
        )
        fly_t = format_seconds(fly_res.total_time) if fly_res.ok else "OOM"
        print(
            f"  {label:<26} AMPED {format_seconds(amped.total_time)}, "
            f"FLYCOO {fly_t} -> {verdict}"
        )
    print(
        "\n(An NVLink-class fabric removes most of AMPED's GPU-GPU cost and "
        "narrows the Twitch gap, but FLYCOO keeps winning: its tensor is "
        "resident, while AMPED still streams shards from the host each "
        "mode. Only dropping the per-mode streaming would flip the verdict.)"
    )


if __name__ == "__main__":
    main()
