"""Walkthrough: out-of-core decomposition from a memory-mapped shard cache.

Run:  python examples/out_of_core.py

PR 1's streaming engine bounded the *transient* working set at
``batch_size`` elements but still held every mode-sorted tensor copy in host
RAM. Shard sources remove that cap: convert the tensor once into a shard
cache (`repro.tensor.io.write_shard_cache` — one mode-sorted copy per mode,
uncompressed so every array can be memory-mapped), then stream batches
straight off the file through :class:`repro.engine.MmapNpzSource`. Only the
pages of the in-flight batches are resident, so the tensor can be far larger
than memory while the results stay **bit-identical** to the in-memory path.

The flow below is the CI smoke job: FROSTT ``.tns`` text → shard cache →
streaming CP-ALS, checked against the fully in-memory decomposition — with
the out-of-core run on the **process-pool backend** (workers attach to the
mmap cache read-only; no tensor bytes cross a pipe) and **double-buffered
prefetch** (a background thread faults the next batch's pages in while the
current one reduces). It drives both the library API and the CLI
(`repro cache` / `repro decompose --shard-cache ... --out-of-core
--backend process --prefetch`).
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AmpedConfig,
    AmpedMTTKRP,
    CompressedChunkSource,
    MmapNpzSource,
    StreamingExecutor,
)
from repro.cli import main as repro_cli
from repro.core.simulate import host_memory_plan
from repro.cpd.als import cp_als
from repro.engine import auto_batch_size
from repro.tensor.generate import lowrank_coo
from repro.tensor.io import (
    read_tns,
    tns_to_shard_cache,
    write_shard_cache_streaming,
    write_tns,
)
from repro.util.humanize import format_bytes

RANK = 4
ITERS = 8
GPUS = 2
SEED = 7


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)

        # --- 1. a "downloaded" FROSTT .tns file ---------------------------
        generated = lowrank_coo((60, 45, 30), 6000, rank=3, noise=0.05, seed=SEED)
        tns_path = tmp / "example.tns"
        write_tns(tns_path, generated, header="out-of-core walkthrough")
        # Read it back like a real download would be: the shape is inferred
        # from the indices (the FROSTT convention), so both execution paths
        # below see exactly the same tensor.
        tensor = read_tns(tns_path)
        print(f"tensor: shape={tensor.shape}, nnz={tensor.nnz} -> {tns_path.name}")

        # --- 2. convert once into a memory-mapped shard cache -------------
        cache_path = tns_to_shard_cache(tns_path, tmp / "example.npz")
        print(
            f"shard cache: {cache_path.name} "
            f"({format_bytes(cache_path.stat().st_size)}, "
            f"{tensor.nmodes} mode-sorted copies)"
        )

        # --- 3. in-memory reference decomposition ------------------------
        config = AmpedConfig(n_gpus=GPUS, rank=RANK)
        in_memory = AmpedMTTKRP(tensor, config, name="in-memory")
        ref = cp_als(
            tensor, rank=RANK, mttkrp=in_memory.mttkrp, n_iters=ITERS,
            tol=0.0, seed=SEED,
        )

        # --- 4. the same decomposition, streamed out of core --------------
        # ... on the process-pool backend with double-buffered prefetch:
        # pool workers re-open the cache read-only (only (rows, partial)
        # results cross the pipe) and a loader thread stages the next batch
        # while the current one reduces.
        ooc_config = config.replace(backend="process", workers=2, prefetch=True)
        ooc = AmpedMTTKRP.from_shard_cache(cache_path, ooc_config, name="ooc")
        print(
            f"out-of-core batch_size resolved to {ooc.engine.batch_size} "
            f"(config batch_size={config.batch_size!r}, cache-model autotune); "
            f"backend={ooc.engine.backend.name}, prefetch on"
        )
        res = cp_als(
            ooc.tensor, rank=RANK, mttkrp=ooc.mttkrp, n_iters=ITERS,
            tol=0.0, seed=SEED,
        )
        print(
            f"fit: in-memory {ref.final_fit:.10f}, "
            f"out-of-core {res.final_fit:.10f}"
        )
        if abs(res.final_fit - ref.final_fit) > 1e-12:
            raise SystemExit("FAIL: out-of-core fit diverged from in-memory")

        # The MTTKRP outputs themselves are bit-identical, not just close:
        rng = np.random.default_rng(1)
        factors = [rng.random((s, RANK)) for s in tensor.shape]
        for mode in range(tensor.nmodes):
            a = in_memory.mttkrp(factors, mode)
            b = ooc.mttkrp(factors, mode)
            if not np.array_equal(a, b):
                raise SystemExit(f"FAIL: mode {mode} bits differ")
        print(
            "MTTKRP outputs bit-identical across all modes "
            "(process backend + prefetch vs in-memory serial)"
        )
        ooc.close()  # release the process pool and the mmap views

        # --- 5. what the residency accounting says ------------------------
        for label, ex in (("in-memory", in_memory), ("out-of-core", ooc)):
            plan = host_memory_plan(ex.workload, ex.config, ex.cost)
            print(
                f"host residency ({label}): tensor "
                f"{format_bytes(plan['tensor_resident'])}, factors "
                f"{format_bytes(plan['factor_matrices'])}"
            )

        # --- 6. the same flow through the CLI -----------------------------
        cli_cache = tmp / "cli.npz"
        assert repro_cli(["cache", "--tns", str(tns_path), str(cli_cache)]) == 0
        assert repro_cli(
            [
                "decompose",
                "--shard-cache", str(cli_cache),
                "--out-of-core",
                "--backend", "process",
                "--workers", "2",
                "--prefetch",
                "--rank", str(RANK),
                "--iters", str(ITERS),
                "--gpus", str(GPUS),
                "--seed", str(SEED),
            ]
        ) == 0

        # --- 7. batch size is the knob that trades I/O granularity --------
        source = MmapNpzSource(cache_path, n_gpus=GPUS)
        auto_b = auto_batch_size(ooc.cost, RANK, tensor.nmodes)
        for batch in (auto_b, 512, None):
            engine = StreamingExecutor(source, batch_size=batch)
            out = engine.mttkrp(factors, 0)
            assert np.array_equal(out, in_memory.mttkrp(factors, 0))
        print(f"auto batch {auto_b}: every granularity bit-identical — OK")

        # --- 8. cold storage: the v2 compressed cache, built in O(budget) -
        # The external-sort streaming builder ingests the .tns directly —
        # the tensor is never resident during construction — and the v2
        # chunked/compressed format replaces mmap faulting with explicit
        # double-buffered chunk reads + decompression (the right trade when
        # bytes moved, not page faults, are what cold storage charges for).
        budget = 16 * 1024  # bytes; far below this tensor's element footprint
        res = write_shard_cache_streaming(
            tns_path, tmp / "example_v2.npz",
            memory_budget=budget, codec="zlib", chunk_nnz=1024,
        )
        v1_bytes = cache_path.stat().st_size
        print(
            f"v2 cache: {res.path.name} "
            f"({format_bytes(res.path.stat().st_size)} vs v1 "
            f"{format_bytes(v1_bytes)}; external sort: {res.n_runs} runs of "
            f"<= {res.run_nnz} elements, peak {res.peak_run_nnz} resident)"
        )
        v2_config = config.replace(prefetch=True)
        with AmpedMTTKRP.from_shard_cache(res.path, v2_config) as v2:
            assert isinstance(v2.source, CompressedChunkSource)  # autodetected
            for mode in range(tensor.nmodes):
                if not np.array_equal(
                    v2.mttkrp(factors, mode), in_memory.mttkrp(factors, mode)
                ):
                    raise SystemExit(f"FAIL: v2 mode {mode} bits differ")
            plan = host_memory_plan(v2.workload, v2.config, v2.cost)
            print(
                f"v2 compressed cache bit-identical (codec="
                f"{v2.config.cache_codec}, decompress staging "
                f"{format_bytes(plan['decompress_staging'])})"
            )


if __name__ == "__main__":
    main()
