"""Thin setup.py shim so editable installs work without the `wheel` package
(this environment is offline; modern PEP 660 editable installs need
bdist_wheel, which `wheel` provides). All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
